"""Full simulator state <-> JSON-compatible dict, bit-identical on resume.

The codec walks a paused :class:`repro.sim.system.System` and produces a
plain dict (strings, numbers, bools, lists, dicts, ``None``) capturing
*everything* the rest of the run depends on: the event queue with its
reserved sequence numbers and deferred-event seam, controller/bank/queue
state down to object identity between queue entries and in-flight
operations, LLC contents and LRU order, wear accounting (flushed before
capture), fault-injector per-line endurance state, every RNG stream, the
telemetry epoch alignment, and the core's architectural state.

Two representation rules keep restores bit-identical:

* **Identity tables.**  :class:`~repro.memory.queues.Request` and
  :class:`~repro.memory.bank.InFlight` objects appear in several places
  at once (queue FIFOs, bank in-flight slots, mirror arrays, *and*
  inside stale completion-event closures, where ``bank.in_flight is not
  op`` identity checks are load-bearing).  Each object is serialized
  once under a table index and every appearance stores the index, so
  the restored object graph has the same aliasing as the original.
* **Descriptors, not pickles.**  Event callbacks are bound methods and
  small lambdas over live simulator objects.  They are encoded as
  symbolic descriptors (``["ctrl.read", bank, op]``) and rebuilt
  against the restored system with the same closure shape, so a
  restored system can itself be captured again byte-identically
  (double round-trip idempotence).

Dicts with insertion-order-dependent semantics (per-factor wear tallies,
lazily touched fault lines, the DRAM buffer's LRU order) are serialized
as pair lists so JSON round-trips preserve their order exactly.
"""

from __future__ import annotations

import itertools
import random
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple)

from repro.cache.lru import CacheLine, LRUCache
from repro.cpu.trace import TraceRecord
from repro.memory.bank import InFlight
from repro.memory.queues import Request, RequestQueue
from repro.workloads.patterns import (Pattern, PhasedPattern,
                                      ReadModifyWrite, SequentialStream)

from .errors import CheckpointError, CheckpointUnsupportedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sim.system import System

#: Version of the *state* layout below (the file envelope has its own).
STATE_SCHEMA_VERSION = 1

_CTRL_STATS_FIELDS: Tuple[str, ...] = (
    "reads_from_llc", "writes_from_llc", "eager_from_llc", "reads_issued",
    "read_row_hits", "read_row_misses", "writes_issued_normal",
    "writes_issued_slow", "eager_issued", "writes_completed",
    "reads_completed", "cancellations", "pauses", "drain_events",
    "drain_time_ns", "read_latency_sum_ns",
)
_LLC_STATS_FIELDS: Tuple[str, ...] = (
    "accesses", "hits", "misses", "writebacks", "eager_writebacks",
    "wasted_eager",
)
_FAULT_STATS_FIELDS: Tuple[str, ...] = (
    "cells_failed", "write_retries", "corrected_writes", "lines_retired",
    "uncorrectable", "first_failure_ns", "uncorrectable_ns",
)
_DRAM_STATS_FIELDS: Tuple[str, ...] = (
    "writebacks_in", "coalesced", "drains_out",
)
_CORE_FIELDS: Tuple[str, ...] = (
    "instructions_retired", "accesses_processed", "outstanding_reads",
    "stall_time_ns", "_next_read_id", "_wait_read_id", "_waiting_mlp",
    "_waiting_write_space", "_waiting_read_space", "_wait_since",
    "_pending_writeback", "_finished",
)


def _fields_to_dict(obj: Any, fields: Sequence[str]) -> Dict[str, Any]:
    return {name: getattr(obj, name) for name in fields}


def _fields_from_dict(obj: Any, fields: Sequence[str],
                      data: Dict[str, Any]) -> None:
    for name in fields:
        setattr(obj, name, data[name])


def _rng_to_json(rng: random.Random) -> List[Any]:
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def _rng_from_json(rng: random.Random, data: Sequence[Any]) -> None:
    rng.setstate((data[0], tuple(data[1]), data[2]))


def _trace_record_row(record: Optional[TraceRecord]) -> Optional[List[Any]]:
    if record is None:
        return None
    return [record.gap_insts, record.block,
            bool(record.is_write), bool(record.dependent)]


def _trace_record_from_row(row: Optional[Sequence[Any]]
                           ) -> Optional[TraceRecord]:
    if row is None:
        return None
    return TraceRecord(row[0], row[1], bool(row[2]), bool(row[3]))


def _pattern_state(pattern: Pattern) -> Dict[str, Any]:
    """The mutable draw-state of one access pattern (recursive)."""
    if isinstance(pattern, SequentialStream):
        return {"cursor": pattern._cursor}
    if isinstance(pattern, ReadModifyWrite):
        return {"pending_write": pattern._pending_write}
    if isinstance(pattern, PhasedPattern):
        return {
            "served": pattern._served,
            "in_second": pattern._in_second,
            "first": _pattern_state(pattern.first),
            "second": _pattern_state(pattern.second),
        }
    return {}


def _restore_pattern(pattern: Pattern, state: Dict[str, Any]) -> None:
    if isinstance(pattern, SequentialStream):
        pattern._cursor = state["cursor"]
    elif isinstance(pattern, ReadModifyWrite):
        pattern._pending_write = state["pending_write"]
    elif isinstance(pattern, PhasedPattern):
        pattern._served = state["served"]
        pattern._in_second = state["in_second"]
        _restore_pattern(pattern.first, state["first"])
        _restore_pattern(pattern.second, state["second"])


def _closure_cells(fn: Callable[..., Any]) -> Dict[str, Any]:
    code = fn.__code__
    closure = fn.__closure__ or ()
    return dict(zip(code.co_freevars,
                    (cell.cell_contents for cell in closure)))


# Factory helpers rebuild event lambdas with the *same closure shape*
# as the originals in repro.memory.controller, so a restored system
# re-captures to an identical snapshot (the encoder below reads the
# closure cells back out by name).

def _make_complete_read(ctrl: Any, bank: Any, op: InFlight
                        ) -> Callable[[], None]:
    return lambda: ctrl._complete_read(bank, op)


def _make_complete_write(ctrl: Any, bank: Any, op: InFlight
                         ) -> Callable[[], None]:
    return lambda: ctrl._complete_write(bank, op)


def _make_complete_read_fast(ctrl: Any, bank_index: int, op: InFlight
                             ) -> Callable[[], None]:
    return lambda: ctrl._complete_read_fast(bank_index, op)


def _make_complete_write_fast(ctrl: Any, bank_index: int, op: InFlight
                              ) -> Callable[[], None]:
    return lambda: ctrl._complete_write_fast(bank_index, op)


def _make_poke(ctrl: Any, bank_index: int) -> Callable[..., None]:
    return lambda b=bank_index: ctrl._try_issue_bank(b)


class _Capture:
    """One capture pass: identity tables plus callback encoding."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self._request_index: Dict[int, int] = {}
        self.request_rows: List[List[Any]] = []
        self._inflight_index: Dict[int, int] = {}
        self.inflight_rows: List[List[Any]] = []

    def request_ref(self, request: Request) -> int:
        key = id(request)
        serial = self._request_index.get(key)
        if serial is None:
            serial = len(self.request_rows)
            self._request_index[key] = serial
            self.request_rows.append([
                request.kind, request.block, request.bank, request.rank,
                request.row, request.arrival_ns,
                self._encode_request_callback(request.callback),
                request.attempts, request.retries, request.speed_factor,
                request.progress_ns, request.req_id,
            ])
        return serial

    def inflight_ref(self, op: InFlight) -> int:
        key = id(op)
        serial = self._inflight_index.get(key)
        if serial is None:
            serial = len(self.inflight_rows)
            self._inflight_index[key] = serial
            self.inflight_rows.append([
                self.request_ref(op.request), op.start_ns, op.finish_ns,
                op.pulse_start_ns, bool(op.cancellable),
                op.resumed_progress_ns,
            ])
        return serial

    def _encode_request_callback(
            self, callback: Optional[Callable[..., None]]
    ) -> Optional[List[Any]]:
        if callback is None:
            return None
        core = self.system.core
        bound_self = getattr(callback, "__self__", None)
        if bound_self is core:
            name = callback.__func__.__name__  # type: ignore[attr-defined]
            if name == "_read_done_plain":
                return ["plain"]
            raise CheckpointUnsupportedError(
                f"unsupported bound request callback SimpleCore.{name}")
        code = getattr(callback, "__code__", None)
        if code is not None and code.co_name == "on_done":
            cells = _closure_cells(callback)
            return ["dep", cells["read_id"]]
        raise CheckpointUnsupportedError(
            f"unsupported request callback {callback!r}")

    def encode_waiter(self, waiter: Callable[[], None]) -> str:
        core = self.system.core
        bound_self = getattr(waiter, "__self__", None)
        if bound_self is core:
            name = waiter.__func__.__name__  # type: ignore[attr-defined]
            if name in ("_write_space_ready", "_read_space_ready"):
                return name
        raise CheckpointUnsupportedError(
            f"unsupported space waiter {waiter!r}")

    def encode_event(self, callback: Callable[[], None]) -> List[Any]:
        system = self.system
        bound_self = getattr(callback, "__self__", None)
        if bound_self is not None:
            name = callback.__func__.__name__  # type: ignore[attr-defined]
            if bound_self is system and name in ("_sample_tick",
                                                 "_eager_tick"):
                return ["system", name]
            if bound_self is system.core and name in ("_start_event",
                                                      "_gap_fired"):
                return ["core", name]
            raise CheckpointUnsupportedError(
                f"unsupported bound event callback "
                f"{type(bound_self).__name__}.{name}")
        code = getattr(callback, "__code__", None)
        if code is None:
            raise CheckpointUnsupportedError(
                f"unsupported event callback {callback!r}")
        names = code.co_names
        cells = _closure_cells(callback)
        if "_try_issue_bank" in names:
            defaults = callback.__defaults__ or ()  # type: ignore[attr-defined]
            return ["ctrl.poke", defaults[0]]
        if "_complete_read_fast" in names:
            return ["ctrl.read_fast", cells["bank_index"],
                    self.inflight_ref(cells["op"])]
        if "_complete_write_fast" in names:
            return ["ctrl.write_fast", cells["bank_index"],
                    self.inflight_ref(cells["op"])]
        if "_complete_read" in names:
            return ["ctrl.read", cells["bank"].index,
                    self.inflight_ref(cells["op"])]
        if "_complete_write" in names:
            return ["ctrl.write", cells["bank"].index,
                    self.inflight_ref(cells["op"])]
        raise CheckpointUnsupportedError(
            f"unsupported event callback {callback!r} "
            f"(co_names={names!r})")


class _Restore:
    """One restore pass: rebuilt identity tables plus callback decoding."""

    def __init__(self, system: "System", state: Dict[str, Any]) -> None:
        self.system = system
        core = system.core
        self.requests: List[Request] = []
        for row in state["requests"]:
            callback: Optional[Callable[..., None]] = None
            desc = row[6]
            if desc is not None:
                if desc[0] == "plain":
                    callback = core._read_done_plain
                else:
                    callback = core._make_read_callback(desc[1])
            self.requests.append(Request(
                kind=row[0], block=row[1], bank=row[2], rank=row[3],
                row=row[4], arrival_ns=row[5], callback=callback,
                attempts=row[7], retries=row[8], speed_factor=row[9],
                progress_ns=row[10], req_id=row[11],
            ))
        self.inflights: List[InFlight] = [
            InFlight(request=self.requests[row[0]], start_ns=row[1],
                     finish_ns=row[2], pulse_start_ns=row[3],
                     cancellable=bool(row[4]), resumed_progress_ns=row[5])
            for row in state["inflights"]
        ]

    def decode_waiter(self, name: str) -> Callable[[], None]:
        waiter = getattr(self.system.core, name)
        return waiter  # type: ignore[no-any-return]

    def decode_event(self, desc: Sequence[Any]) -> Callable[..., None]:
        kind = desc[0]
        system = self.system
        if kind == "system":
            return getattr(system, desc[1])  # type: ignore[no-any-return]
        if kind == "core":
            return getattr(system.core, desc[1])  # type: ignore[no-any-return]
        ctrl = system.controller
        if kind == "ctrl.poke":
            return _make_poke(ctrl, desc[1])
        if kind == "ctrl.read":
            return _make_complete_read(ctrl, ctrl.banks[desc[1]],
                                       self.inflights[desc[2]])
        if kind == "ctrl.write":
            return _make_complete_write(ctrl, ctrl.banks[desc[1]],
                                        self.inflights[desc[2]])
        if kind == "ctrl.read_fast":
            return _make_complete_read_fast(ctrl, desc[1],
                                            self.inflights[desc[2]])
        if kind == "ctrl.write_fast":
            return _make_complete_write_fast(ctrl, desc[1],
                                             self.inflights[desc[2]])
        raise CheckpointError(f"unknown event descriptor {desc!r}")


def _capture_queue(capture: _Capture, queue: RequestQueue) -> Dict[str, Any]:
    return {
        "fifos": [[capture.request_ref(req) for req in fifo]
                  for fifo in queue._fifos],
        "size": queue._size,
        "occupancy_integral": queue._occupancy_integral,
        "last_change_ns": queue._last_change_ns,
        "epoch_peak": queue._epoch_peak,
    }


def _restore_queue(restore: _Restore, queue: RequestQueue,
                   state: Dict[str, Any]) -> None:
    for bank, refs in enumerate(state["fifos"]):
        fifo = queue._grow_to(bank)
        fifo.clear()
        fifo.extend(restore.requests[ref] for ref in refs)
    queue._size = state["size"]
    queue._occupancy_integral = state["occupancy_integral"]
    queue._last_change_ns = state["last_change_ns"]
    queue._epoch_peak = state["epoch_peak"]


def _capture_trace(system: "System") -> Dict[str, Any]:
    trace = system._trace
    rng = getattr(trace, "rng", None)
    patterns = getattr(trace, "patterns", None)
    if rng is None or patterns is None:
        raise CheckpointUnsupportedError(
            f"workload {system.config.workload!r} uses a trace without "
            "checkpointable state (workload mixes are generator-backed "
            "and cannot be checkpointed; use a single profile)")
    return {
        "rng": _rng_to_json(rng),
        "patterns": [_pattern_state(p) for p in patterns],
    }


def _restore_trace(system: "System", state: Dict[str, Any]) -> None:
    trace = system._trace
    rng = getattr(trace, "rng", None)
    patterns = getattr(trace, "patterns", None)
    if rng is None or patterns is None:
        raise CheckpointError(
            f"workload {system.config.workload!r} trace is not restorable")
    if len(patterns) != len(state["patterns"]):
        raise CheckpointError(
            f"trace pattern count changed: snapshot has "
            f"{len(state['patterns'])}, live trace has {len(patterns)}")
    _rng_from_json(rng, state["rng"])
    for pattern, pattern_state in zip(patterns, state["patterns"]):
        _restore_pattern(pattern, pattern_state)


def _capture_llc(system: "System") -> Dict[str, Any]:
    llc = system.llc
    lru = llc.cache
    deadblock = llc.deadblock
    age = deadblock.age_threshold
    return {
        "stats": _fields_to_dict(llc.stats, _LLC_STATS_FIELDS),
        "rng": _rng_to_json(llc.rng),
        "sets": [[[line.tag, bool(line.dirty), bool(line.eager_cleaned),
                   line.last_touch] for line in lines]
                 for lines in lru.sets],
        "set_access_counts": list(lru.set_access_counts),
        "profiler": {
            "hit_counters": list(llc.profiler.hit_counters),
            "miss_counter": llc.profiler.miss_counter,
            "eager_position": llc.profiler.eager_position,
            "samples_taken": llc.profiler.samples_taken,
        },
        "deadblock": {
            "buckets": list(deadblock.buckets),
            "total_reuses": deadblock.total_reuses,
            # float("inf") is not valid strict JSON; None encodes it.
            "age_threshold": None if age == float("inf") else age,
            "samples_taken": deadblock.samples_taken,
        },
    }


def _restore_llc(system: "System", state: Dict[str, Any]) -> None:
    llc = system.llc
    lru: LRUCache = llc.cache
    _fields_from_dict(llc.stats, _LLC_STATS_FIELDS, state["stats"])
    _rng_from_json(llc.rng, state["rng"])
    if len(state["sets"]) != lru.num_sets:
        raise CheckpointError(
            f"LLC geometry changed: snapshot has {len(state['sets'])} "
            f"sets, live cache has {lru.num_sets}")
    for index, rows in enumerate(state["sets"]):
        lru.sets[index][:] = [
            CacheLine(tag=row[0], dirty=bool(row[1]),
                      eager_cleaned=bool(row[2]), last_touch=row[3])
            for row in rows
        ]
    lru.set_access_counts[:] = state["set_access_counts"]
    if lru._fastpath:
        for index, lines in enumerate(lru.sets):
            tags = [line.tag for line in lines]
            lru._tag_sets[index][:] = tags
            members = lru._tag_members[index]
            members.clear()
            members.update(tags)
    # hit_counters / buckets are aliased by the LLC hot path
    # (llc._hit_counters, llc._db_buckets); restore strictly in place.
    profiler = llc.profiler
    profiler.hit_counters[:] = state["profiler"]["hit_counters"]
    profiler.miss_counter = state["profiler"]["miss_counter"]
    profiler.eager_position = state["profiler"]["eager_position"]
    profiler.samples_taken = state["profiler"]["samples_taken"]
    deadblock = llc.deadblock
    deadblock.buckets[:] = state["deadblock"]["buckets"]
    deadblock.total_reuses = state["deadblock"]["total_reuses"]
    age = state["deadblock"]["age_threshold"]
    deadblock.age_threshold = float("inf") if age is None else age
    deadblock.samples_taken = state["deadblock"]["samples_taken"]


def _capture_wear(system: "System") -> Dict[str, Any]:
    wear = system.wear
    return {
        "records": [[record.normal_writes,
                     [[factor, count] for factor, count
                      in record.slow_writes_by_factor.items()]]
                    for record in wear.records],
        "damage_watermarks": list(wear._damage_watermarks),
        "remappers": [{
            "gap": remapper.gap, "start": remapper.start,
            "writes_since_move": remapper._writes_since_move,
            "total_writes": remapper.total_writes,
            "gap_moves": remapper.gap_moves,
        } for remapper in wear.remappers],
        "block_damage": [list(row) for row in wear.block_damage],
    }


def _restore_wear(system: "System", state: Dict[str, Any]) -> None:
    wear = system.wear
    for record, row in zip(wear.records, state["records"]):
        record.normal_writes = row[0]
        record.slow_writes_by_factor = {
            factor: count for factor, count in row[1]}
    wear._damage_watermarks = list(state["damage_watermarks"])
    for remapper, remap_state in zip(wear.remappers, state["remappers"]):
        remapper.gap = remap_state["gap"]
        remapper.start = remap_state["start"]
        remapper._writes_since_move = remap_state["writes_since_move"]
        remapper.total_writes = remap_state["total_writes"]
        remapper.gap_moves = remap_state["gap_moves"]
    for target, row in zip(wear.block_damage, state["block_damage"]):
        target[:] = row
    # Pending whole-write buffers were flushed before capture.
    wear._pend_normal = [0.0] * wear.num_banks
    wear._pend_slow = [dict() for _ in range(wear.num_banks)]
    wear._pend_dirty = False


def _capture_faults(system: "System") -> Optional[Dict[str, Any]]:
    injector = system.faults
    if injector is None:
        return None
    return {
        "stats": _fields_to_dict(injector.stats, _FAULT_STATS_FIELDS),
        "rng": _rng_to_json(injector._rng),
        "spares_left": list(injector.spares_left),
        "retired_per_bank": list(injector.retired_per_bank),
        "lines": [[[line, [list(ls.limits), ls.damage, ls.dead,
                           ls.replaced]]
                   for line, ls in bank_lines.items()]
                  for bank_lines in injector._lines],
    }


def _restore_faults(system: "System",
                    state: Optional[Dict[str, Any]]) -> None:
    injector = system.faults
    if injector is None:
        if state is not None:
            raise CheckpointError(
                "snapshot carries fault state but config has no faults")
        return
    if state is None:
        raise CheckpointError(
            "config enables faults but snapshot has no fault state")
    from repro.faults.injector import _LineState
    _fields_from_dict(injector.stats, _FAULT_STATS_FIELDS, state["stats"])
    _rng_from_json(injector._rng, state["rng"])
    injector.spares_left[:] = state["spares_left"]
    injector.retired_per_bank[:] = state["retired_per_bank"]
    for bank_lines, rows in zip(injector._lines, state["lines"]):
        bank_lines.clear()
        for line, (limits, damage, dead, replaced) in rows:
            bank_lines[line] = _LineState(
                limits=list(limits), damage=damage, dead=dead,
                replaced=replaced)


def _capture_telemetry(system: "System") -> Optional[Dict[str, Any]]:
    telemetry = system.telemetry
    if not telemetry.enabled:
        return None
    registry = telemetry.metrics
    tracer = telemetry.tracer

    def heatmap_state(heatmap: Any) -> Dict[str, Any]:
        return {
            "epoch_times_ns": list(heatmap.epoch_times_ns),
            "rows": [list(row) for row in heatmap.rows],
        }

    return {
        "metrics": {
            "counters": {name: counter.value for name, counter
                         in registry._counters.items()},
            "gauges": {name: gauge.value for name, gauge
                       in registry._gauges.items()},
            "histograms": {name: {"bounds": list(hist.bounds),
                                  "counts": list(hist.counts)}
                           for name, hist in registry._histograms.items()},
            "sample_times_ns": list(registry.sample_times_ns),
            "series": {name: list(column) for name, column
                       in registry.series.items()},
        },
        "tracer": {
            "recorded": tracer.recorded,
            "ring": [list(record) for record in tracer._ring],
        },
        "heatmap": heatmap_state(telemetry.heatmap),
        "retired_heatmap": heatmap_state(telemetry.retired_heatmap),
    }


def _restore_telemetry(system: "System",
                       state: Optional[Dict[str, Any]]) -> None:
    telemetry = system.telemetry
    if not telemetry.enabled:
        if state is not None:
            raise CheckpointError(
                "snapshot carries telemetry but config disables it")
        return
    if state is None:
        raise CheckpointError(
            "config enables telemetry but snapshot has no telemetry state")
    registry = telemetry.metrics
    metrics = state["metrics"]
    for name, value in metrics["counters"].items():
        registry.counter(name).value = value
    for name, value in metrics["gauges"].items():
        registry.gauge(name).value = value
    for name, hist in metrics["histograms"].items():
        registry.histogram(name, tuple(hist["bounds"])).counts[:] = \
            hist["counts"]
    registry.sample_times_ns[:] = metrics["sample_times_ns"]
    registry.series = {name: list(column) for name, column
                       in metrics["series"].items()}
    tracer = telemetry.tracer
    tracer._ring.clear()
    tracer._ring.extend(tuple(record) for record in state["tracer"]["ring"])
    tracer.recorded = state["tracer"]["recorded"]
    for heatmap, heat_state in ((telemetry.heatmap, state["heatmap"]),
                                (telemetry.retired_heatmap,
                                 state["retired_heatmap"])):
        heatmap.epoch_times_ns[:] = heat_state["epoch_times_ns"]
        heatmap.rows[:] = [list(row) for row in heat_state["rows"]]


def capture_state(system: "System") -> Dict[str, Any]:
    """Serialize a paused system's complete state to a plain dict.

    Must be called at an event boundary (no core frame on the stack).
    Buffered accounting (wear pending buffers, controller telemetry
    pending counters) is flushed first; flushing commutes with the
    accounting the rest of the run would do, so a captured-and-continued
    run stays bit-identical to a straight-through one.
    """
    core = system.core
    if core._in_run or core._owns_clock:
        raise CheckpointUnsupportedError(
            "capture_state must run at an event boundary, not from "
            "inside a core execution frame")
    ctrl = system.controller
    system.wear.flush_pending()
    if ctrl._ts is not None:
        ctrl._ts.flush_pending()
    ctrl.sync_bank_state()

    capture = _Capture(system)
    events = system.events

    banks_rows = []
    for bank in ctrl.banks:
        banks_rows.append([
            bank.open_row, bank.busy_until,
            None if bank.in_flight is None
            else capture.inflight_ref(bank.in_flight),
            bank.busy_time_ns, bank.ops_begun, bank.ops_cancelled,
            bank.lines_retired,
        ])
    mirror_in_flight = [
        None if op is None else capture.inflight_ref(op)
        for op in ctrl._bank_in_flight
    ]
    heap_rows = [[time_ns, seq, capture.encode_event(callback)]
                 for time_ns, seq, callback in events._heap]
    deferred = events._deferred
    deferred_row = (None if deferred is None else
                    [deferred[0], deferred[1],
                     capture.encode_event(deferred[2])])

    # Peek-and-reanchor: observe the next request id without changing
    # what the live controller will hand out next.
    next_request_id = next(ctrl._request_ids)
    ctrl._request_ids = itertools.count(next_request_id)

    dram_buffer = system.dram_buffer
    quota = system.quota
    flip = system.flip_n_write

    state: Dict[str, Any] = {
        "state_schema": STATE_SCHEMA_VERSION,
        "fastpath": bool(ctrl._fastpath),
        "sanitize": bool(system.sanitize),
        "events": {
            "now": events.now,
            "seq": events._seq,
            "heap": heap_rows,
            "deferred": deferred_row,
        },
        "system": {
            "measure_start_ns": system._measure_start_ns,
            "measure_end_ns": system._measure_end_ns,
            "accesses_at_last_scan": system._accesses_at_last_scan,
            "done": system._done,
        },
        "core": {
            **_fields_to_dict(core, _CORE_FIELDS),
            "pending_fill": _trace_record_row(core._pending_fill),
            "gap_record": _trace_record_row(core._gap_record),
        },
        "trace": _capture_trace(system),
        "controller": {
            "bus_free_ns": ctrl.bus_free_ns,
            "drain_mode": ctrl.drain_mode,
            "drain_started_ns": ctrl._drain_started_ns,
            "stats": _fields_to_dict(ctrl.stats, _CTRL_STATS_FIELDS),
            "wear_write_tally": ctrl._wear_write_tally,
            "wear_write_baseline": ctrl._wear_write_baseline,
            "next_request_id": next_request_id,
            "write_space_waiters": [capture.encode_waiter(w)
                                    for w in ctrl._write_space_waiters],
            "read_space_waiters": [capture.encode_waiter(w)
                                   for w in ctrl._read_space_waiters],
            "faw": [list(limiter._recent) for limiter in ctrl.faw],
            "queues": {
                "read": _capture_queue(capture, ctrl.read_q),
                "write": _capture_queue(capture, ctrl.write_q),
                "eager": _capture_queue(capture, ctrl.eager_q),
            },
            "banks": banks_rows,
            "bank_busy_until": list(ctrl._bank_busy_until),
            "bank_open_row": list(ctrl._bank_open_row),
            "bank_in_flight": mirror_in_flight,
        },
        "llc": _capture_llc(system),
        "wear": _capture_wear(system),
        "quota": None if quota is None else {
            "cumulative_wear": list(quota.cumulative_wear),
            "slow_only": list(quota.slow_only),
            "previous_periods": quota.previous_periods,
            "slow_only_periods": quota.slow_only_periods,
        },
        "faults": _capture_faults(system),
        "flip_n_write": None if flip is None else {
            "rng": _rng_to_json(flip.rng),
            "lines_written": flip.lines_written,
            "bits_written": flip.bits_written,
        },
        "dram_buffer": None if dram_buffer is None else {
            "lines": list(dram_buffer._lines.keys()),
            "stats": _fields_to_dict(dram_buffer.stats,
                                     _DRAM_STATS_FIELDS),
        },
        "telemetry": _capture_telemetry(system),
        # Identity tables last: fully populated by the walks above.
        "requests": capture.request_rows,
        "inflights": capture.inflight_rows,
    }
    return state


def restore_state(system: "System", state: Dict[str, Any]) -> None:
    """Overwrite a freshly constructed system with captured state.

    ``system`` must come straight from ``System(config)`` with the same
    config (and the same fastpath/sanitize environment) the snapshot was
    captured under: construction wires probes, rebinds hot-path methods,
    and rebuilds the workload trace; this function then overwrites every
    piece of mutable state.
    """
    if state.get("state_schema") != STATE_SCHEMA_VERSION:
        raise CheckpointError(
            f"unsupported state schema {state.get('state_schema')!r} "
            f"(this build reads schema {STATE_SCHEMA_VERSION})")
    ctrl = system.controller
    if bool(ctrl._fastpath) != bool(state["fastpath"]):
        raise CheckpointError(
            f"snapshot was captured with fastpath="
            f"{bool(state['fastpath'])} but this environment resolves "
            f"fastpath={bool(ctrl._fastpath)} (check REPRO_NO_FASTPATH)")
    if bool(system.sanitize) != bool(state["sanitize"]):
        raise CheckpointError(
            f"snapshot was captured with sanitize="
            f"{bool(state['sanitize'])} but this environment resolves "
            f"sanitize={bool(system.sanitize)} (check REPRO_SANITIZE)")

    restore = _Restore(system, state)
    events = system.events
    events_state = state["events"]
    events.now = events_state["now"]
    events._seq = events_state["seq"]
    events._heap = [
        (row[0], row[1], restore.decode_event(row[2]))
        for row in events_state["heap"]
    ]
    deferred_row = events_state["deferred"]
    events._deferred = (None if deferred_row is None else
                        (deferred_row[0], deferred_row[1],
                         restore.decode_event(deferred_row[2])))
    events.stop = False

    system_state = state["system"]
    system._measure_start_ns = system_state["measure_start_ns"]
    system._measure_end_ns = system_state["measure_end_ns"]
    system._accesses_at_last_scan = system_state["accesses_at_last_scan"]
    system._done = system_state["done"]

    core = system.core
    core_state = state["core"]
    _fields_from_dict(core, _CORE_FIELDS, core_state)
    core._pending_fill = _trace_record_from_row(core_state["pending_fill"])
    core._gap_record = _trace_record_from_row(core_state["gap_record"])
    core._in_run = False
    core._owns_clock = False
    core.stop_requested = False

    _restore_trace(system, state["trace"])

    ctrl_state = state["controller"]
    ctrl.bus_free_ns = ctrl_state["bus_free_ns"]
    ctrl.drain_mode = ctrl_state["drain_mode"]
    ctrl._drain_started_ns = ctrl_state["drain_started_ns"]
    _fields_from_dict(ctrl.stats, _CTRL_STATS_FIELDS, ctrl_state["stats"])
    ctrl._wear_write_tally = ctrl_state["wear_write_tally"]
    ctrl._wear_write_baseline = ctrl_state["wear_write_baseline"]
    ctrl._request_ids = itertools.count(ctrl_state["next_request_id"])
    ctrl._write_space_waiters[:] = [
        restore.decode_waiter(name)
        for name in ctrl_state["write_space_waiters"]]
    ctrl._read_space_waiters[:] = [
        restore.decode_waiter(name)
        for name in ctrl_state["read_space_waiters"]]
    for limiter, recent in zip(ctrl.faw, ctrl_state["faw"]):
        limiter._recent.clear()
        limiter._recent.extend(recent)
    _restore_queue(restore, ctrl.read_q, ctrl_state["queues"]["read"])
    _restore_queue(restore, ctrl.write_q, ctrl_state["queues"]["write"])
    _restore_queue(restore, ctrl.eager_q, ctrl_state["queues"]["eager"])
    for bank, row in zip(ctrl.banks, ctrl_state["banks"]):
        bank.open_row = row[0]
        bank.busy_until = row[1]
        bank.in_flight = (None if row[2] is None
                          else restore.inflights[row[2]])
        bank.busy_time_ns = row[3]
        bank.ops_begun = row[4]
        bank.ops_cancelled = row[5]
        bank.lines_retired = row[6]
    ctrl._bank_busy_until[:] = ctrl_state["bank_busy_until"]
    ctrl._bank_open_row[:] = ctrl_state["bank_open_row"]
    ctrl._bank_in_flight[:] = [
        None if ref is None else restore.inflights[ref]
        for ref in ctrl_state["bank_in_flight"]]

    _restore_llc(system, state["llc"])
    _restore_wear(system, state["wear"])

    quota_state = state["quota"]
    if (system.quota is None) != (quota_state is None):
        raise CheckpointError(
            "snapshot and config disagree about wear-quota state")
    if system.quota is not None and quota_state is not None:
        system.quota.cumulative_wear = list(quota_state["cumulative_wear"])
        system.quota.slow_only[:] = [
            bool(v) for v in quota_state["slow_only"]]
        system.quota.previous_periods = quota_state["previous_periods"]
        system.quota.slow_only_periods = quota_state["slow_only_periods"]

    _restore_faults(system, state["faults"])

    flip_state = state["flip_n_write"]
    if (system.flip_n_write is None) != (flip_state is None):
        raise CheckpointError(
            "snapshot and config disagree about Flip-N-Write state")
    if system.flip_n_write is not None and flip_state is not None:
        _rng_from_json(system.flip_n_write.rng, flip_state["rng"])
        system.flip_n_write.lines_written = flip_state["lines_written"]
        system.flip_n_write.bits_written = flip_state["bits_written"]

    buffer_state = state["dram_buffer"]
    if (system.dram_buffer is None) != (buffer_state is None):
        raise CheckpointError(
            "snapshot and config disagree about DRAM-buffer state")
    if system.dram_buffer is not None and buffer_state is not None:
        system.dram_buffer._lines.clear()
        for block in buffer_state["lines"]:
            system.dram_buffer._lines[block] = None
        _fields_from_dict(system.dram_buffer.stats, _DRAM_STATS_FIELDS,
                          buffer_state["stats"])

    _restore_telemetry(system, state["telemetry"])
