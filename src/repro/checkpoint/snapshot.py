"""Schema-versioned snapshot files: save, validate, load, resume.

A snapshot is one JSON file::

    {"schema": 1, "sha256": "<hex digest>", "body": "<base64(zlib(json))>"}

The *body* is the canonical JSON (sorted keys, compact separators) of
``{"config": <SimConfig fields>, "state": <codec state>}``; the digest
is computed over the uncompressed canonical body bytes, so any
truncation or bit flip - in the envelope, the base64, the compressed
stream, or the body itself - surfaces as a structured
:class:`~repro.checkpoint.errors.CheckpointCorruptionError` instead of a
silently wrong resume.  Embedding the full config makes a snapshot
self-contained: ``repro resume <file>`` needs no other inputs.

Writes go through :func:`repro.store.codec.atomic_write_bytes`
(temp file + ``os.replace``), so a crash mid-write can never leave a
half-written snapshot where a resume would find it.
"""

from __future__ import annotations

import base64
import binascii
import dataclasses
import hashlib
import json
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Tuple, Union

from repro.faults.config import FaultConfig
from repro.sim.config import SimConfig
from repro.store.codec import atomic_write_bytes

from .codec import capture_state, restore_state
from .errors import CheckpointCorruptionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sim.system import System

#: Version of the snapshot *file envelope*; the state layout inside the
#: body carries its own ``state_schema`` (see :mod:`.codec`).
SNAPSHOT_SCHEMA_VERSION = 1

#: Default snapshot filename pattern, keyed by accesses processed so a
#: directory of slices sorts chronologically.
SNAPSHOT_NAME_FORMAT = "checkpoint-{accesses:012d}.ckpt"


def config_to_dict(config: SimConfig) -> Dict[str, Any]:
    """SimConfig -> JSON-able dict (policy by name, faults expanded)."""
    data: Dict[str, Any] = {}
    for field in dataclasses.fields(SimConfig):
        value = getattr(config, field.name)
        if field.name == "policy":
            data[field.name] = config.policy_name
        elif field.name == "faults":
            data[field.name] = (None if value is None
                                else dataclasses.asdict(value))
        else:
            data[field.name] = value
    return data


def config_from_dict(data: Dict[str, Any]) -> SimConfig:
    kwargs = dict(data)
    faults = kwargs.get("faults")
    if faults is not None:
        kwargs["faults"] = FaultConfig(**faults)
    return SimConfig(**kwargs)


def _encode_snapshot(config: SimConfig, state: Dict[str, Any]) -> bytes:
    body = {"config": config_to_dict(config), "state": state}
    body_bytes = json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=False,
    ).encode("utf-8")
    envelope = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "sha256": hashlib.sha256(body_bytes).hexdigest(),
        "body": base64.b64encode(
            zlib.compress(body_bytes, 6)).decode("ascii"),
    }
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


def _decode_snapshot(path: Path, raw: bytes
                     ) -> Tuple[SimConfig, Dict[str, Any]]:
    try:
        envelope = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointCorruptionError(
            path, f"invalid JSON envelope: {error}") from None
    if not isinstance(envelope, dict):
        raise CheckpointCorruptionError(
            path, f"envelope is {type(envelope).__name__}, expected object")
    missing = {"schema", "sha256", "body"} - set(envelope)
    if missing:
        raise CheckpointCorruptionError(
            path, f"envelope missing keys: {sorted(missing)}")
    if envelope["schema"] != SNAPSHOT_SCHEMA_VERSION:
        raise CheckpointCorruptionError(
            path, f"unsupported snapshot schema {envelope['schema']!r} "
                  f"(this build reads schema {SNAPSHOT_SCHEMA_VERSION})")
    try:
        compressed = base64.b64decode(envelope["body"], validate=True)
    except (binascii.Error, ValueError, TypeError) as error:
        raise CheckpointCorruptionError(
            path, f"body is not valid base64: {error}") from None
    try:
        body_bytes = zlib.decompress(compressed)
    except zlib.error as error:
        raise CheckpointCorruptionError(
            path, f"body failed to decompress: {error}") from None
    digest = hashlib.sha256(body_bytes).hexdigest()
    if digest != envelope["sha256"]:
        raise CheckpointCorruptionError(
            path, f"body digest mismatch: envelope says "
                  f"{envelope['sha256']}, body hashes to {digest}")
    try:
        body = json.loads(body_bytes.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointCorruptionError(
            path, f"body is not valid JSON: {error}") from None
    if not isinstance(body, dict) or "config" not in body \
            or "state" not in body:
        raise CheckpointCorruptionError(
            path, "body lacks config/state sections")
    try:
        config = config_from_dict(body["config"])
    except (TypeError, ValueError) as error:
        raise CheckpointCorruptionError(
            path, f"embedded config does not validate: {error}") from None
    return config, body["state"]


def snapshot_bytes(system: "System") -> bytes:
    """The encoded snapshot for a paused system (no file involved)."""
    return _encode_snapshot(system.config, capture_state(system))


def save_snapshot(system: "System",
                  path: Union[str, Path]) -> Path:
    """Capture ``system`` and atomically write it to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(target, snapshot_bytes(system))
    return target


def default_snapshot_path(system: "System",
                          directory: Union[str, Path]) -> Path:
    """Chronologically sorting slice filename for ``directory``."""
    return Path(directory) / SNAPSHOT_NAME_FORMAT.format(
        accesses=system.core.accesses_processed)


def load_snapshot(path: Union[str, Path]
                  ) -> Tuple[SimConfig, Dict[str, Any]]:
    """Read and fully validate a snapshot file.

    Raises :class:`CheckpointCorruptionError` on any damage and
    :class:`FileNotFoundError` when the file simply is not there (a
    missing snapshot is a scheduling condition, not corruption).
    """
    target = Path(path)
    return _decode_snapshot(target, target.read_bytes())


def restore_system(path: Union[str, Path]) -> "System":
    """Rebuild a runnable :class:`System` from a snapshot file.

    The returned system continues via
    :meth:`~repro.sim.system.System.finish_run` (or stepwise via
    ``continue_run``) and is bit-identical, from the captured boundary
    onward, to the run that produced the snapshot.
    """
    from repro.sim.system import System
    config, state = load_snapshot(path)
    system = System(config)
    restore_state(system, state)
    system.rearm_after_restore()
    return system
