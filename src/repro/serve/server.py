"""The stdlib-only HTTP/1.1 server over ``asyncio`` streams.

No web framework: requests are parsed straight off the stream reader
(request line, headers, ``Content-Length`` body), responses are JSON
with ``Connection: close``.  That is all a job API needs and keeps the
service importable anywhere the simulator is.

Endpoints::

    POST /jobs              submit a job spec (see repro.serve.schemas)
    GET  /jobs              all job statuses, newest last
    GET  /jobs/<id>         one job's status + progress
    GET  /jobs/<id>/result  the RunResult payload(s) once completed
    GET  /healthz           liveness + queue/worker/job counts
    GET  /metrics           live counters/gauges (MetricRegistry)

Submission is idempotent twice over: a digest already covered by a
queued/running/completed job returns that job (single execution per
digest, no matter how many clients race), and a digest whose configs
are all in the result cache completes instantly without touching the
queue.  Both paths count into ``serve.jobs.deduped``.

Every error is structured JSON - ``{"error": {"code", "message", ...}}``
- so clients never parse prose.  Shutdown (SIGTERM/SIGINT or
:meth:`ReproServer.request_shutdown`) closes the listener, lets the
pool drain for ``drain_timeout`` seconds, then cancels what remains.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
from contextlib import suppress
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.runner import Runner, result_to_dict
from repro.serve.jobs import Job, JobState, JobStore, host_now
from repro.serve.pool import WorkerPool
from repro.serve.queue import PriorityJobQueue
from repro.serve.schemas import SpecError, parse_job_spec
from repro.telemetry.metrics import MetricRegistry

logger = logging.getLogger(__name__)

#: Largest accepted request body; a job spec is tiny, so anything close
#: to this is a client bug (or not a client at all).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServeError(Exception):
    """A server setup problem worth one clear line, not a traceback."""


class _HttpError(Exception):
    """Raised by handlers to produce a structured JSON error response."""

    def __init__(self, status: int, code: str, message: str,
                 extra: Optional[Dict[str, Any]] = None) -> None:
        self.status = status
        self.body: Dict[str, Any] = {
            "error": {"code": code, "message": message, **(extra or {})}
        }
        super().__init__(message)


class ReproServer:
    """The ``repro serve`` service: HTTP front end + queue + pool."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 workers: int = 2, drain_timeout: float = 10.0,
                 runner: Optional[Runner] = None,
                 metrics: Optional[MetricRegistry] = None) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if not 0 <= port <= 65535:
            raise ServeError(f"port must be in [0, 65535], got {port}")
        if drain_timeout < 0:
            raise ServeError(
                f"drain timeout cannot be negative, got {drain_timeout}")
        self.host = host
        self._requested_port = port
        self.drain_timeout = drain_timeout
        self.runner = runner if runner is not None else Runner()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.store = JobStore()
        self.queue = PriorityJobQueue()
        self.pool = WorkerPool(self.queue, self.store, self.runner,
                               self.metrics, workers)
        self._server: Optional[asyncio.Server] = None
        self._shutdown = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at = 0.0
        # Create every instrument up front so /metrics reports zeros
        # instead of omitting series that have not fired yet.
        for name in ("submitted", "completed", "failed", "cancelled",
                     "deduped"):
            self.metrics.counter(f"serve.jobs.{name}")
        self.metrics.gauge("serve.workers.busy")
        self.metrics.gauge("serve.workers.total").set(workers)
        self.metrics.probe("serve.queue.depth", lambda: self.queue.depth)
        self.metrics.probe(
            "serve.jobs.running",
            lambda: self.store.counts()[JobState.RUNNING])
        # Storage-backend operation counters, labelled by backend kind so
        # dashboards can tell a sqlite-backed service from a file-backed
        # one at a glance.  Probes (not counters): the runner's store
        # owns the numbers, /metrics just reads them.
        result_store = self.runner.store
        for counter in ("gets", "hits", "misses", "puts", "deletes",
                        "evictions"):
            self.metrics.probe(
                f"store.{result_store.kind}.{counter}",
                lambda name=counter: result_store.counters.as_dict()[name])

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Bind the listener and spawn the worker pool.

        Raises ``OSError`` (e.g. ``EADDRINUSE``) if the port cannot be
        bound; the CLI maps that onto its ``CLIError`` exit-1 path.
        """
        self._loop = asyncio.get_running_loop()
        self._started_at = host_now()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self._requested_port)
        self.pool.start()
        logger.info("serving on http://%s:%d (workers=%d)",
                    self.host, self.port, self.pool.workers)

    def request_shutdown(self) -> None:
        """Begin graceful shutdown; safe to call from any thread."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)

    async def shutdown(self) -> None:
        """Stop accepting, drain the pool, cancel past the deadline."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        cancelled = await self.pool.drain(self.drain_timeout)
        if cancelled:
            logger.warning("drain deadline (%.1fs) cancelled %d job(s)",
                           self.drain_timeout, len(cancelled))
        logger.info("shutdown complete: %s", self.store.counts())

    async def run(self) -> None:
        """Start, serve until a shutdown is requested, then drain.

        Installs SIGINT/SIGTERM handlers where the platform allows it
        (the CLI's entry point); embedders that drive ``start`` and
        ``shutdown`` directly are unaffected.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, self._shutdown.set)
        try:
            await self._shutdown.wait()
        finally:
            await self.shutdown()

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
                status, payload = await self._dispatch(method, target, body)
            except _HttpError as error:
                status, payload = error.status, error.body
            except (asyncio.IncompleteReadError, ConnectionError,
                    ValueError) as error:
                status, payload = 400, {"error": {
                    "code": "bad-request", "message": str(error)}}
            except Exception:   # noqa: BLE001 - last-resort boundary
                logger.exception("unhandled error serving request")
                status, payload = 500, {"error": {
                    "code": "internal", "message": "unhandled server error"}}
            await self._write_response(writer, status, payload)
        finally:
            with suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader,
                            ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.split()
        if len(parts) < 3:
            raise _HttpError(400, "bad-request",
                             f"malformed request line {request_line!r}")
        method = parts[0].decode("latin-1").upper()
        target = parts[1].decode("latin-1")
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad-request",
                                     "unparseable Content-Length") from None
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, "payload-too-large",
                             f"body exceeds {MAX_BODY_BYTES} bytes")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, target, body

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        with suppress(ConnectionError):
            await writer.drain()

    # -- routing --------------------------------------------------------

    async def _dispatch(self, method: str, target: str, body: bytes,
                        ) -> Tuple[int, Dict[str, Any]]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, self._healthz()
        if path == "/metrics":
            self._require(method, "GET", path)
            return 200, self._metrics_snapshot()
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            self._require(method, "GET", path)
            return 200, {"jobs": [job.to_status()
                                  for job in self.store.jobs()]}
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/result"):
                self._require(method, "GET", path)
                return 200, self._result(rest[:-len("/result")])
            self._require(method, "GET", path)
            return 200, self._status(rest)
        raise _HttpError(404, "unknown-endpoint",
                         f"no such endpoint: {method} {path}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HttpError(405, "method-not-allowed",
                             f"{path} supports {expected} only")

    def _get_job(self, job_id: str) -> Job:
        job = self.store.get(job_id)
        if job is None:
            raise _HttpError(404, "unknown-job", f"no such job: {job_id}")
        return job

    # -- handlers -------------------------------------------------------

    def _healthz(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "workers": self.pool.workers,
            "workers_busy": self.pool.busy,
            "queue_depth": self.queue.depth,
            "jobs": self.store.counts(),
            "uptime_s": round(host_now() - self._started_at, 3),
        }

    def _metrics_snapshot(self) -> Dict[str, Any]:
        snapshot = self.metrics.current()
        # Probes read as gauges on the wire: one flat map per kind.
        gauges = dict(snapshot["gauges"])
        gauges.update(snapshot["probes"])
        return {"counters": snapshot["counters"], "gauges": gauges}

    def _submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as error:
            raise _HttpError(400, "invalid-json",
                             f"request body is not JSON: {error}") from None
        try:
            spec = parse_job_spec(payload)
        except SpecError as error:
            raise _HttpError(400, "invalid-spec", "job spec failed "
                             "validation", {"errors": error.errors},
                             ) from None
        self.metrics.counter("serve.jobs.submitted").inc()
        job, deduped = self.store.submit(spec)
        if deduped:
            self.metrics.counter("serve.jobs.deduped").inc()
            logger.info("deduped %s (digest %s, state %s)",
                        job.id, spec.digest, job.state)
            status = job.to_status()
            status["deduped"] = True
            # On the wire, "cached" means "the result is ready right
            # now without new work" - true for any dedupe onto an
            # already-completed job, however that job got its result.
            if job.state == JobState.COMPLETED:
                status["cached"] = True
            return 200, status
        if self._try_cache(job):
            self.metrics.counter("serve.jobs.deduped").inc()
            self.metrics.counter("serve.jobs.completed").inc()
            logger.info("completed %s from cache (digest %s)",
                        job.id, spec.digest)
            status = job.to_status()
            status["deduped"] = False
            return 200, status
        self.queue.put(job.id, spec.priority)
        logger.info("queued %s: %s (digest %s, priority %d, %d run(s))",
                    job.id, spec.kind, spec.digest, spec.priority,
                    spec.total_runs)
        status = job.to_status()
        status["deduped"] = False
        return 202, status

    def _try_cache(self, job: Job) -> bool:
        """Complete a job straight from the result cache if possible.

        Only an *all-hit* job short-circuits: one miss means real work,
        and partial grids go through the pool (whose Runner reuses the
        cached entries anyway).
        """
        results: List[Dict[str, Any]] = []
        for config in job.spec.configs:
            cached = self.runner.peek(config)
            if cached is None:
                return False
            results.append(result_to_dict(cached))
        self.store.mark_completed(job, results, cached=True)
        return True

    def _status(self, job_id: str) -> Dict[str, Any]:
        return self._get_job(job_id).to_status()

    def _result(self, job_id: str) -> Dict[str, Any]:
        job = self._get_job(job_id)
        if job.state == JobState.FAILED:
            raise _HttpError(500, "job-failed",
                             job.error or "job failed",
                             {"id": job.id, "digest": job.spec.digest})
        if job.state == JobState.CANCELLED:
            raise _HttpError(409, "job-cancelled",
                             job.error or "job cancelled",
                             {"id": job.id, "digest": job.spec.digest})
        if job.state != JobState.COMPLETED or job.results is None:
            raise _HttpError(409, "job-not-finished",
                             f"job is {job.state}; poll GET /jobs/{job.id}",
                             {"id": job.id, "state": job.state})
        payload: Dict[str, Any] = {
            "id": job.id,
            "kind": job.spec.kind,
            "digest": job.spec.digest,
            "cached": job.cached,
            "results": job.results,
        }
        if job.spec.kind == "run":
            payload["result"] = job.results[0]
        return payload
