"""The priority job queue feeding the worker pool.

A tiny heap-backed asyncio queue: entries are ``(priority, seq,
job_id)`` so lower priorities run first and equal priorities stay FIFO
(``seq`` is a monotonically increasing submission counter that also
makes every entry unique, keeping job ids out of heap comparisons).

``close()`` starts the drain phase of a shutdown: waiting getters are
released, ``get`` returns queued work until the heap is empty and then
``None`` forever, and further ``put`` calls raise.  ``cancel_pending``
is the hard variant - it empties the heap and hands the evicted job
ids back so the caller can mark them cancelled.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import List, Optional, Tuple


class PriorityJobQueue:
    """Async priority queue of job ids (lower priority value = sooner)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._closed = False
        self._ready = asyncio.Event()

    @property
    def depth(self) -> int:
        return len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, job_id: str, priority: int) -> None:
        if self._closed:
            raise RuntimeError("queue is closed")
        self._seq += 1
        heapq.heappush(self._heap, (priority, self._seq, job_id))
        self._ready.set()

    async def get(self) -> Optional[str]:
        """Next job id by priority; ``None`` once closed and drained."""
        while True:
            if self._heap:
                _, _, job_id = heapq.heappop(self._heap)
                if not self._heap and not self._closed:
                    self._ready.clear()
                return job_id
            if self._closed:
                return None
            await self._ready.wait()

    def close(self) -> None:
        """No more puts; getters drain the heap then receive ``None``."""
        self._closed = True
        self._ready.set()

    def cancel_pending(self) -> List[str]:
        """Empty the heap; returns the evicted job ids in queue order."""
        evicted = [job_id for _, _, job_id in sorted(self._heap)]
        self._heap.clear()
        return evicted
