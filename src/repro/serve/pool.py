"""The bounded worker pool that actually executes jobs.

``workers`` asyncio tasks pull job ids off the priority queue; each job
runs to completion inside a ``ThreadPoolExecutor`` thread (simulations
are CPU-bound blocking calls) via :meth:`Runner.sweep` with
``apply_env_scale=False``, so the configs execute *exactly* as the spec
digested them - the digest a client was given at submission is the
digest the result cache files land under.  ``jobs=1`` keeps each job
serial in its thread: concurrency comes from the pool width, not from
nesting a process pool under every worker.

Shutdown is two-phase (see :meth:`WorkerPool.drain`): first the queue
is closed and workers finish what is queued, then - if the deadline
expires - pending jobs are cancelled and the worker tasks torn down.
A job already running past the deadline is marked cancelled and its
thread abandoned; results it may still produce are discarded.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List

from repro.experiments.runner import Runner, SweepProgress, result_to_dict
from repro.serve.jobs import Job, JobState, JobStore
from repro.serve.queue import PriorityJobQueue
from repro.telemetry.metrics import MetricRegistry


class WorkerPool:   # simlint: thread-shared (busy counter vs event loop)
    """``workers`` concurrent job executors over one thread pool."""

    def __init__(self, queue: PriorityJobQueue, store: JobStore,
                 runner: Runner, metrics: MetricRegistry,
                 workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._lock = threading.Lock()
        self._queue = queue
        self._store = store
        self._runner = runner
        self._metrics = metrics
        self._busy = 0
        self._tasks: List["asyncio.Task[None]"] = []
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job")

    @property
    def busy(self) -> int:
        return self._busy

    def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        loop = asyncio.get_running_loop()
        with self._lock:
            self._tasks = [
                loop.create_task(self._worker(), name=f"repro-worker-{i}")
                for i in range(self.workers)
            ]

    def _execute(self, job: Job) -> List[Dict[str, Any]]:
        """Blocking job execution (runs on an executor thread)."""
        def on_progress(event: SweepProgress) -> None:
            # Publish through the store so the cross-thread mutation
            # happens under the store lock (SIM013).
            self._store.set_progress(job, event.completed)

        results = self._runner.sweep(
            list(job.spec.configs), jobs=1, progress=on_progress,
            apply_env_scale=False,
        )
        return [result_to_dict(result) for result in results]

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            if job_id is None:    # queue closed and drained
                return
            job = self._store.get(job_id)
            if job is None or job.state != JobState.QUEUED:
                continue          # cancelled while waiting in the heap
            self._store.mark_running(job)
            with self._lock:
                self._busy += 1
            self._metrics.gauge("serve.workers.busy").set(self._busy)
            try:
                results = await loop.run_in_executor(
                    self._executor, self._execute, job)
            except asyncio.CancelledError:
                self._store.mark_cancelled(
                    job, "shutdown deadline expired while running")
                self._metrics.counter("serve.jobs.cancelled").inc()
                raise
            except Exception as error:   # noqa: BLE001 - job boundary
                self._store.mark_failed(
                    job, f"{type(error).__name__}: {error}")
                self._metrics.counter("serve.jobs.failed").inc()
            else:
                self._store.mark_completed(job, results)
                self._metrics.counter("serve.jobs.completed").inc()
            finally:
                with self._lock:
                    self._busy -= 1
                self._metrics.gauge("serve.workers.busy").set(self._busy)

    async def drain(self, timeout: float) -> List[str]:
        """Graceful shutdown: drain the queue, then cancel past deadline.

        Returns the ids of jobs that were cancelled (queued jobs evicted
        from the heap; running jobs mark themselves cancelled via their
        worker's ``CancelledError`` handler).
        """
        self._queue.close()
        cancelled: List[str] = []
        if not self._tasks:
            self._executor.shutdown(wait=False, cancel_futures=True)
            return cancelled
        _done, pending = await asyncio.wait(self._tasks, timeout=timeout)
        if pending:
            for job_id in self._queue.cancel_pending():
                job = self._store.get(job_id)
                if job is not None and job.state == JobState.QUEUED:
                    self._store.mark_cancelled(
                        job, "shutdown deadline expired while queued")
                    self._metrics.counter("serve.jobs.cancelled").inc()
                    cancelled.append(job_id)
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=False, cancel_futures=True)
        return cancelled
