"""The in-memory job store: lifecycle state plus dedupe-by-digest.

Jobs move ``queued -> running -> completed`` (or ``failed``, or
``cancelled`` when a shutdown deadline cuts the queue short)::

                 +-----------+   worker    +-----------+
    POST /jobs ->|  queued   |------------>|  running  |
                 +-----------+             +-----+-----+
                       |  shutdown deadline      |
                       v                         +--> completed
                 +-----------+                   |
                 | cancelled |                   +--> failed
                 +-----------+

Submissions are idempotent: the store indexes live and completed jobs
by their spec digest, so re-submitting work that is already queued,
running or done returns the *same* job instead of executing twice.
Failed and cancelled jobs are evicted from the index, so resubmission
after a failure retries cleanly.

Job and store state is mutated from the server's event loop *and*
from executor threads (progress publication, see
:meth:`JobStore.set_progress`), so both classes are marked
``simlint: thread-shared`` and every mutation goes through the store's
re-entrant lock - simlint's SIM013 rule enforces that invariant
statically across the asyncio/thread-pool boundary.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.schemas import JobSpec


def host_now() -> float:
    """Monotonic host-process clock for job ages and durations.

    The serve layer is service infrastructure, not simulation logic -
    nothing here feeds back into a result - so reading the host clock
    is correct, and this single suppressed call site documents that.
    """
    return time.monotonic()   # simlint: ignore[SIM003] -- service uptime, never feeds a result


class JobState:
    """String constants for the job lifecycle (JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States that still hold (or will hold) a usable result; jobs in
    #: these states absorb duplicate submissions of the same digest.
    DEDUPE_TARGETS = (QUEUED, RUNNING, COMPLETED)

    ALL = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED)


@dataclass
class Job:   # simlint: thread-shared (mutate via JobStore under its lock)
    """One submitted job and everything the status endpoints report."""

    id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    completed_runs: int = 0
    #: True when the result came from the cache/dedupe short circuit
    #: rather than a fresh execution by this job.
    cached: bool = False
    error: Optional[str] = None
    #: ``result_to_dict`` payloads in config order, set on completion.
    results: Optional[List[Dict[str, Any]]] = None
    submitted_at: float = field(default_factory=host_now)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def total_runs(self) -> int:
        return self.spec.total_runs

    def to_status(self) -> Dict[str, Any]:
        """The JSON body of ``GET /jobs/<id>`` (and the POST response)."""
        status: Dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "digest": self.spec.digest,
            "state": self.state,
            "priority": self.spec.priority,
            "cached": self.state == JobState.COMPLETED and self.cached,
            "progress": {
                "completed": self.completed_runs,
                "total": self.total_runs,
            },
            "spec": dict(self.spec.summary),
            "age_s": round(host_now() - self.submitted_at, 3),
        }
        if self.error is not None:
            status["error"] = self.error
        if self.started_at is not None and self.finished_at is not None:
            status["duration_s"] = round(
                self.finished_at - self.started_at, 3)
        return status


class JobStore:   # simlint: thread-shared (event loop + executor threads)
    """Insertion-ordered job registry with a digest dedupe index.

    The store's re-entrant lock serialises every mutation: lifecycle
    transitions arrive from the event loop while progress updates
    (:meth:`set_progress`) arrive from executor threads mid-run.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._by_digest: Dict[str, str] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def submit(self, spec: JobSpec) -> "tuple[Job, bool]":
        """Register a spec; returns ``(job, deduped)``.

        ``deduped`` is True when an existing queued/running/completed
        job already covers this digest - the caller must not enqueue a
        second execution.  A digest whose previous job failed or was
        cancelled gets a fresh job (retry semantics).
        """
        with self._lock:
            existing_id = self._by_digest.get(spec.digest)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state in JobState.DEDUPE_TARGETS:
                    return existing, True
            self._next_id += 1
            job = Job(id=f"job-{self._next_id:06d}", spec=spec)
            self._jobs[job.id] = job
            self._by_digest[spec.digest] = job.id
            return job, False

    def mark_running(self, job: Job) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.started_at = host_now()

    def set_progress(self, job: Job, completed: int) -> None:
        """Publish mid-run progress (called from executor threads)."""
        with self._lock:
            job.completed_runs = completed

    def mark_completed(self, job: Job, results: List[Dict[str, Any]],
                       cached: bool = False) -> None:
        with self._lock:
            job.results = results
            job.completed_runs = job.total_runs
            job.cached = cached
            job.state = JobState.COMPLETED
            job.finished_at = host_now()

    def mark_failed(self, job: Job, error: str) -> None:
        with self._lock:
            job.error = error
            job.state = JobState.FAILED
            job.finished_at = host_now()
            self._drop_index(job)

    def mark_cancelled(self, job: Job, reason: str) -> None:
        with self._lock:
            job.error = reason
            job.state = JobState.CANCELLED
            job.finished_at = host_now()
            self._drop_index(job)

    def _drop_index(self, job: Job) -> None:
        """Failed/cancelled jobs stop absorbing duplicate submissions."""
        with self._lock:
            if self._by_digest.get(job.spec.digest) == job.id:
                del self._by_digest[job.spec.digest]

    def counts(self) -> Dict[str, int]:
        """Jobs per state, every state present (zeros included)."""
        counts = {state: 0 for state in JobState.ALL}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts
