"""Wire schemas: job-spec JSON in, validated SimConfig grids out.

A job spec is one JSON object with a ``kind`` discriminator:

``run``
    one simulation - ``{"kind": "run", "workload": "hmmer",
    "policy": "BE-Mellow+SC", "scale": 0.05}``
``sweep``
    a workload x policy grid - ``{"kind": "sweep",
    "workloads": ["lbm", "stream"], "policies": ["Norm", "Slow+SC"]}``
``faults``
    a fault-injection Monte Carlo - ``{"kind": "faults",
    "workload": "zeusmp", "seeds": 4}`` (per-seed grid via
    :func:`repro.experiments.faults.survival_configs`).

Validation is *total*: every problem in a spec is collected into one
:class:`SpecError` whose ``errors`` list maps straight onto the
service's structured 400 body, so a client sees all of its mistakes in
a single round trip instead of one per request.

The **job digest** is the service's idempotency key: a deterministic
hash of the full, normalised config grid (via the same
``digest_for_key`` the result cache uses).  Two specs that simulate the
same work - whatever key order or defaults the client spelled out -
share a digest, which is what submission dedupe and cache short-circuit
keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.policies import parse_policy
from repro.faults.config import FaultConfig
from repro.sim.config import SimConfig, digest_for_key

#: Queue priority per job kind; lower runs first.  Interactive single
#: runs jump ahead of grid sweeps, which jump ahead of fault Monte
#: Carlos - the latter are the longest and least latency-sensitive.
PRIORITY_BY_KIND: Dict[str, int] = {"run": 0, "sweep": 1, "faults": 2}

#: Inclusive bounds for an explicit per-job ``priority`` override.
PRIORITY_MIN = 0
PRIORITY_MAX = 9

_KINDS = tuple(PRIORITY_BY_KIND)

#: Per-config knobs shared by every kind (JSON key -> SimConfig kwarg).
_CONFIG_KNOBS: Dict[str, str] = {
    "slow_factor": "slow_factor",
    "banks": "num_banks",
    "ranks": "num_ranks",
    "expo_factor": "expo_factor",
    "seed": "seed",
    "measure": "measure_accesses",
}

_FAULT_KNOBS = (
    "median_endurance", "sigma", "cells_per_line",
    "spare_lines_per_bank", "max_write_retries",
    "stuck_mismatch_probability", "wear_acceleration",
)

_KEYS_BY_KIND: Dict[str, FrozenSet[str]] = {
    "run": frozenset({"kind", "priority", "workload", "policy", "scale",
                      "faults", *_CONFIG_KNOBS}),
    "sweep": frozenset({"kind", "priority", "workloads", "policies",
                        "scale", "faults", *_CONFIG_KNOBS}),
    "faults": frozenset({"kind", "priority", "workload", "policies",
                         "seeds", "scale", "faults", *_CONFIG_KNOBS}),
}


class SpecError(Exception):
    """A job spec failed validation; ``errors`` is the structured list.

    Each entry is ``{"field": <json path>, "message": <what is wrong>}``
    and the service returns the whole list in its 400 body.
    """

    def __init__(self, errors: Sequence[Mapping[str, str]]) -> None:
        self.errors: List[Dict[str, str]] = [dict(e) for e in errors]
        super().__init__(
            "; ".join(f"{e['field']}: {e['message']}" for e in self.errors)
        )


@dataclass(frozen=True)
class JobSpec:
    """A validated, normalised job: the config grid plus queue metadata."""

    kind: str
    configs: Tuple[SimConfig, ...]
    priority: int
    digest: str
    summary: Dict[str, Any]

    @property
    def total_runs(self) -> int:
        return len(self.configs)


class _Collector:
    """Accumulates field errors so one response reports them all."""

    def __init__(self) -> None:
        self.errors: List[Dict[str, str]] = []

    def add(self, field: str, message: str) -> None:
        self.errors.append({"field": field, "message": message})

    def raise_if_any(self) -> None:
        if self.errors:
            raise SpecError(self.errors)


def _known_workloads() -> List[str]:
    from repro.workloads.mix import MIXES
    from repro.workloads.profiles import PROFILES
    return sorted(set(PROFILES) | set(MIXES))


def _check_workload(errors: _Collector, field: str, value: Any,
                    ) -> Optional[str]:
    if not isinstance(value, str):
        errors.add(field, f"expected a workload name string, got "
                          f"{type(value).__name__}")
        return None
    if value not in _known_workloads():
        errors.add(field, f"unknown workload {value!r} "
                          f"(known: {', '.join(_known_workloads())})")
        return None
    return value


def _check_policy(errors: _Collector, field: str, value: Any,
                  ) -> Optional[str]:
    if not isinstance(value, str):
        errors.add(field, f"expected a policy name string, got "
                          f"{type(value).__name__}")
        return None
    try:
        parse_policy(value)
    except ValueError as error:
        errors.add(field, str(error))
        return None
    return value


def _check_number(errors: _Collector, field: str, value: Any,
                  minimum: Optional[float] = None) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        errors.add(field, f"expected a number, got {type(value).__name__}")
        return None
    if minimum is not None and value < minimum:
        errors.add(field, f"must be >= {minimum}, got {value}")
        return None
    return float(value)


def _check_int(errors: _Collector, field: str, value: Any,
               minimum: Optional[int] = None) -> Optional[int]:
    if isinstance(value, bool) or not isinstance(value, int):
        errors.add(field, f"expected an integer, got {type(value).__name__}")
        return None
    if minimum is not None and value < minimum:
        errors.add(field, f"must be >= {minimum}, got {value}")
        return None
    return value


def _check_name_list(errors: _Collector, field: str, value: Any) -> List[str]:
    """A non-empty JSON array of strings (workloads/policies lists)."""
    if not isinstance(value, list) or not value:
        errors.add(field, "expected a non-empty array of names")
        return []
    names: List[str] = []
    for i, item in enumerate(value):
        if not isinstance(item, str):
            errors.add(f"{field}[{i}]",
                       f"expected a name string, got {type(item).__name__}")
            continue
        names.append(item)
    return names


def _parse_faults(errors: _Collector, value: Any,
                  base: Optional[FaultConfig]) -> Optional[FaultConfig]:
    """A ``faults`` sub-object: knob overrides on ``base`` (or defaults)."""
    if value is None:
        return base
    if not isinstance(value, dict):
        errors.add("faults", f"expected an object, got "
                             f"{type(value).__name__}")
        return base
    overrides: Dict[str, Any] = {}
    for key, item in value.items():
        if key not in _FAULT_KNOBS:
            errors.add(f"faults.{key}",
                       f"unknown fault knob (known: {', '.join(_FAULT_KNOBS)})")
            continue
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            errors.add(f"faults.{key}",
                       f"expected a number, got {type(item).__name__}")
            continue
        overrides[key] = item
    try:
        if base is None:
            return FaultConfig(**overrides)
        return replace(base, **overrides)
    except ValueError as error:
        errors.add("faults", str(error))
        return base


def _config_kwargs(errors: _Collector, payload: Mapping[str, Any],
                   ) -> Dict[str, Any]:
    """Validate the shared per-config knobs into SimConfig kwargs."""
    kwargs: Dict[str, Any] = {}
    for field, kwarg in _CONFIG_KNOBS.items():
        if field not in payload:
            continue
        if field in ("banks", "ranks", "seed", "measure"):
            minimum = 1 if field != "seed" else None
            checked_int = _check_int(errors, field, payload[field], minimum)
            if checked_int is not None:
                kwargs[kwarg] = checked_int
        else:
            checked = _check_number(errors, field, payload[field],
                                    minimum=1e-9)
            if checked is not None:
                kwargs[kwarg] = checked
    return kwargs


def _build_config(errors: _Collector, workload: str, policy: str,
                  kwargs: Dict[str, Any], scale: float,
                  faults: Optional[FaultConfig], seed: Optional[int] = None,
                  ) -> Optional[SimConfig]:
    merged = dict(kwargs)
    if seed is not None:
        merged["seed"] = seed
    try:
        config = SimConfig(workload=workload, policy=policy,
                           faults=faults, **merged)
    except (TypeError, ValueError) as error:
        errors.add("config", str(error))
        return None
    if scale != 1.0:
        config = config.scaled(scale)
    return config


def _job_digest(configs: Sequence[SimConfig]) -> str:
    """Deterministic idempotency key for a config grid.

    A single-config job digests to its config's own cache digest, so a
    served run and a ``repro run`` of the same config agree on identity;
    grids digest the ordered list of config cache keys.
    """
    if len(configs) == 1:
        return configs[0].cache_digest()
    return digest_for_key([list(c.cache_key()) for c in configs])


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate request JSON into a :class:`JobSpec`.

    Raises :class:`SpecError` carrying *every* field problem found; the
    server maps it to a structured 400 response.
    """
    errors = _Collector()
    if not isinstance(payload, dict):
        errors.add("$", f"job spec must be a JSON object, got "
                        f"{type(payload).__name__}")
        errors.raise_if_any()

    kind = payload.get("kind")
    if not isinstance(kind, str) or kind not in _KINDS:
        errors.add("kind", f"must be one of {', '.join(_KINDS)}, "
                           f"got {kind!r}")
        errors.raise_if_any()
    assert isinstance(kind, str)

    for key in payload:
        if key not in _KEYS_BY_KIND[kind]:
            errors.add(key, f"unknown field for kind {kind!r} (known: "
                            f"{', '.join(sorted(_KEYS_BY_KIND[kind]))})")

    priority = PRIORITY_BY_KIND[kind]
    if "priority" in payload:
        checked_priority = _check_int(errors, "priority",
                                      payload["priority"], PRIORITY_MIN)
        if checked_priority is not None:
            if checked_priority > PRIORITY_MAX:
                errors.add("priority",
                           f"must be <= {PRIORITY_MAX}, got "
                           f"{checked_priority}")
            else:
                priority = checked_priority

    scale = 1.0
    if "scale" in payload:
        checked_scale = _check_number(errors, "scale", payload["scale"],
                                      minimum=1e-9)
        if checked_scale is not None:
            scale = checked_scale

    kwargs = _config_kwargs(errors, payload)
    configs: List[SimConfig] = []
    summary: Dict[str, Any] = {"kind": kind}

    if kind == "run":
        if "workload" not in payload:
            errors.add("workload", "required for kind 'run'")
        workload = _check_workload(errors, "workload",
                                   payload.get("workload", ""))
        policy = _check_policy(errors, "policy",
                               payload.get("policy", "Norm"))
        faults = _parse_faults(errors, payload.get("faults"), None)
        errors.raise_if_any()
        assert workload is not None and policy is not None
        config = _build_config(errors, workload, policy, kwargs, scale,
                               faults)
        errors.raise_if_any()
        assert config is not None
        configs = [config]
        summary.update(workload=workload, policy=policy)

    elif kind == "sweep":
        if "workloads" not in payload:
            errors.add("workloads", "required for kind 'sweep'")
        if "policies" not in payload:
            errors.add("policies", "required for kind 'sweep'")
        workloads = [
            w for w in _check_name_list(errors, "workloads",
                                        payload.get("workloads", []))
            if _check_workload(errors, "workloads", w) is not None
        ]
        policies = [
            p for p in _check_name_list(errors, "policies",
                                        payload.get("policies", []))
            if _check_policy(errors, "policies", p) is not None
        ]
        faults = _parse_faults(errors, payload.get("faults"), None)
        errors.raise_if_any()
        for workload in workloads:
            for policy in policies:
                config = _build_config(errors, workload, policy, kwargs,
                                       scale, faults)
                if config is not None:
                    configs.append(config)
        errors.raise_if_any()
        summary.update(workloads=workloads, policies=policies)

    else:  # kind == "faults"
        from repro.experiments.faults import (
            DEFAULT_MC_SCALE,
            SURVIVAL_POLICIES,
            default_fault_config,
        )
        if "scale" not in payload:
            scale = DEFAULT_MC_SCALE
        workload = _check_workload(errors, "workload",
                                   payload.get("workload", "zeusmp"))
        if "policies" in payload:
            policies = [
                p for p in _check_name_list(errors, "policies",
                                            payload["policies"])
                if _check_policy(errors, "policies", p) is not None
            ]
        else:
            policies = list(SURVIVAL_POLICIES)
        seeds = _check_int(errors, "seeds", payload.get("seeds", 5),
                           minimum=1)
        faults = _parse_faults(errors, payload.get("faults"),
                               default_fault_config())
        errors.raise_if_any()
        assert workload is not None and seeds is not None
        assert faults is not None
        for policy in policies:
            for seed in range(1, seeds + 1):
                config = _build_config(errors, workload, policy, kwargs,
                                       scale, faults, seed=seed)
                if config is not None:
                    configs.append(config)
        errors.raise_if_any()
        summary.update(workload=workload, policies=policies, seeds=seeds)

    if scale != 1.0:
        summary["scale"] = scale
    return JobSpec(kind=kind, configs=tuple(configs), priority=priority,
                   digest=_job_digest(configs), summary=summary)
