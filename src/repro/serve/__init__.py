"""Simulation-as-a-service: the ``repro serve`` async job API.

This package turns the sweep engine, result cache, fault Monte Carlo
and telemetry subsystem into a long-running HTTP service:

* :mod:`repro.serve.schemas` - wire formats: job-spec validation that
  turns request JSON into :class:`repro.sim.config.SimConfig` grids and
  a deterministic job digest, with structured field-level errors;
* :mod:`repro.serve.jobs`    - the in-memory job store with
  dedupe-by-digest and per-job progress/lifecycle state;
* :mod:`repro.serve.queue`   - the priority job queue (single runs
  ahead of sweeps ahead of fault Monte Carlos, overridable per job);
* :mod:`repro.serve.pool`    - the bounded worker pool that executes
  jobs through :class:`repro.experiments.runner.Runner`;
* :mod:`repro.serve.server`  - the stdlib-only HTTP/1.1 server over
  ``asyncio`` streams, plus graceful drain-or-cancel shutdown.

Everything is standard library + the existing simulator; there is no
web framework to install.  See ``docs/serving.md`` for the endpoint
reference and ``repro serve --help`` for the CLI.
"""

from repro.serve.jobs import Job, JobState, JobStore
from repro.serve.queue import PriorityJobQueue
from repro.serve.schemas import (
    PRIORITY_BY_KIND,
    JobSpec,
    SpecError,
    parse_job_spec,
)
from repro.serve.server import ReproServer, ServeError

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "JobStore",
    "PRIORITY_BY_KIND",
    "PriorityJobQueue",
    "ReproServer",
    "ServeError",
    "SpecError",
    "parse_job_spec",
]
