"""Write-policy algebra (Table III).

A :class:`WritePolicy` captures one column of the paper's evaluation matrix,
e.g. ``BE-Mellow+SC+WQ`` = Bank-Aware + Eager Mellow Writes, slow writes
cancellable, Wear Quota on.  ``parse_policy`` understands the paper's naming
scheme so experiment code can say exactly what the figures say.

Policy semantics:

* ``Norm``      - every write at 1.0x latency.
* ``Slow``      - every write at the slow factor (default 3.0x).
* ``B-Mellow``  - Bank-Aware Mellow Writes: a write issues slow iff it is
  the only request queued for its bank.
* ``E-``        - eager writebacks from the LLC are enabled (useless dirty
  lines stream out through the Eager Mellow Queue).  ``E-Norm`` issues eager
  writes at normal speed (the paper's performance-at-all-costs point);
  every other eager-enabled policy issues them slow.
* ``BE-Mellow`` - both Bank-Aware and Eager.
* ``+NC`` / ``+SC`` - normal-speed / slow-speed writes are cancellable when
  a read arrives for the same bank.
* ``+WQ``       - Wear Quota lifetime guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro import params


@dataclass(frozen=True)
class WritePolicy:
    """One memory write policy from Table III."""

    name: str
    bank_aware: bool = False
    eager: bool = False
    all_slow: bool = False
    eager_slow: bool = True
    cancel_normal: bool = False
    cancel_slow: bool = False
    wear_quota: bool = False
    pausing: bool = False
    multi_latency: bool = False
    mid_factor: float = 1.5
    slow_factor: float = params.SLOW_FACTOR_DEFAULT

    def __post_init__(self) -> None:
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1.0")
        if self.multi_latency:
            if not 1.0 <= self.mid_factor <= self.slow_factor:
                raise ValueError("need 1.0 <= mid_factor <= slow_factor")
            if not self.bank_aware:
                raise ValueError("multi-latency requires a Bank-Aware policy")
        if self.all_slow and self.bank_aware:
            raise ValueError("Slow and B-Mellow are mutually exclusive")
        if self.pausing and not (self.cancel_normal or self.cancel_slow):
            raise ValueError(
                "write pausing (+WP) needs interruptible writes (+NC/+SC)"
            )

    @property
    def uses_slow_writes(self) -> bool:
        """Whether this policy can ever issue a slow write."""
        return (
            self.all_slow
            or self.bank_aware
            or self.wear_quota
            or (self.eager and self.eager_slow)
        )

    def cancellable(self, slow: bool) -> bool:
        """Whether a write issued at this speed may be cancelled by a read."""
        return self.cancel_slow if slow else self.cancel_normal

    def with_slow_factor(self, factor: float) -> "WritePolicy":
        return replace(self, slow_factor=factor)


# Base-scheme templates; parse_policy stamps the requested name, slow
# factor, and suffix toggles onto a copy via dataclasses.replace.
_BASE_POLICIES: Dict[str, WritePolicy] = {
    "norm": WritePolicy(name="Norm"),
    "slow": WritePolicy(name="Slow", all_slow=True),
    "b-mellow": WritePolicy(name="B-Mellow", bank_aware=True),
    "be-mellow": WritePolicy(name="BE-Mellow", bank_aware=True, eager=True),
    "e-norm": WritePolicy(name="E-Norm", eager=True, eager_slow=False),
    "e-slow": WritePolicy(name="E-Slow", all_slow=True, eager=True),
}


def parse_policy(name: str, slow_factor: float = params.SLOW_FACTOR_DEFAULT) -> WritePolicy:
    """Parse a Table III policy name like ``"BE-Mellow+SC+WQ"``.

    The base name selects the write scheme; ``+NC``/``+SC``/``+WQ`` suffixes
    toggle cancellation and Wear Quota.  Parsing is case-insensitive.
    """
    parts = name.strip().split("+")
    base = parts[0].strip().lower()
    if base not in _BASE_POLICIES:
        known = ", ".join(sorted(_BASE_POLICIES))
        raise ValueError(f"unknown base policy {parts[0]!r} (known: {known})")
    cancel_normal = cancel_slow = wear_quota = False
    pausing = multi_latency = False
    for suffix in parts[1:]:
        suffix = suffix.strip().upper()
        if suffix == "NC":
            cancel_normal = True
        elif suffix == "SC":
            cancel_slow = True
        elif suffix == "WQ":
            wear_quota = True
        elif suffix == "WP":
            # Write pausing (Qureshi et al., HPCA 2010): an interrupted
            # write keeps its progress and resumes later instead of
            # restarting from scratch.
            pausing = True
        elif suffix == "ML":
            # Multi-latency Mellow Writes (the Section VI-I future-work
            # extension): a mild 1.5x slowdown for lightly-contended banks.
            multi_latency = True
        else:
            raise ValueError(f"unknown policy suffix {suffix!r}")
    return replace(
        _BASE_POLICIES[base],
        name=name,
        slow_factor=slow_factor,
        cancel_normal=cancel_normal,
        cancel_slow=cancel_slow,
        wear_quota=wear_quota,
        pausing=pausing,
        multi_latency=multi_latency,
    )


# The policy set evaluated in Figures 10-16.
PAPER_POLICY_NAMES = (
    "Norm",
    "E-Norm+NC",
    "Slow+SC",
    "E-Slow+SC",
    "B-Mellow+SC",
    "BE-Mellow+SC",
    "Norm+WQ",
    "B-Mellow+SC+WQ",
    "BE-Mellow+SC+WQ",
)


def paper_policies(
    slow_factor: float = params.SLOW_FACTOR_DEFAULT,
) -> List[WritePolicy]:
    """The full evaluated policy list, parsed."""
    return [parse_policy(n, slow_factor) for n in PAPER_POLICY_NAMES]
