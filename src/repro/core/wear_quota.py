"""Wear Quota (Section IV-C): per-bank lifetime guarantee.

Execution is divided into sample periods of ``period_ns``.  A bank whose
accumulated wear exceeds the quota of all elapsed periods may only issue
slow writes during the coming period.

    WearBound_blk  = Endur_blk * T_sample / T_lifetime
    WearBound_bank = BlkNum_bank * WearBound_blk * Ratio_quota
    ExceedQuota    = sum(Wear_bank) - WearBound_bank * Num_previous_periods

Wear is counted in normal-write equivalents, which makes the bound directly
comparable to the endurance limit regardless of the write-speed mix.
"""

from __future__ import annotations

from typing import List, Optional

from repro import params
from repro.telemetry import EV_QUOTA_TRIP, NULL_TELEMETRY, Telemetry
from repro.telemetry.metrics import Counter, Gauge


class WearQuota:
    """Per-bank wear-quota accounting and slow-only gating."""

    def __init__(
        self,
        num_banks: int,
        blocks_per_bank: int,
        endurance_per_block: float = params.BASE_ENDURANCE,
        target_lifetime_years: float = params.TARGET_LIFETIME_YEARS,
        period_ns: float = params.WEAR_QUOTA_PERIOD_NS,
        ratio_quota: float = params.RATIO_QUOTA,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        if target_lifetime_years <= 0:
            raise ValueError("target lifetime must be positive")
        if not 0 < ratio_quota <= 1.0:
            raise ValueError("ratio_quota must be in (0, 1]")
        self.num_banks = num_banks
        self.period_ns = period_ns
        target_lifetime_ns = target_lifetime_years * params.NS_PER_YEAR
        wear_bound_blk = endurance_per_block * period_ns / target_lifetime_ns
        self.wear_bound_bank = blocks_per_bank * wear_bound_blk * ratio_quota
        self.cumulative_wear: List[float] = [0.0] * num_banks
        self.slow_only: List[bool] = [False] * num_banks
        self.previous_periods = 0
        self.slow_only_periods = 0   # total bank-periods spent gated
        self._tel = telemetry
        self._trips: Optional[Counter] = None
        self._gated_gauge: Optional[Gauge] = None
        if telemetry.enabled:
            self._trips = telemetry.metrics.counter("quota.trips")
            self._gated_gauge = telemetry.metrics.gauge("quota.banks_gated")

    def record_wear(self, bank: int, damage: float) -> None:
        """Account ``damage`` normal-write equivalents to ``bank``."""
        self.cumulative_wear[bank] += damage

    def exceed_quota(self, bank: int) -> float:
        """ExceedQuota of ``bank`` for the elapsed periods (Section IV-C)."""
        budget = self.wear_bound_bank * self.previous_periods
        return self.cumulative_wear[bank] - budget

    def start_period(self) -> None:
        """Begin a new sample period: refresh every bank's slow-only gate.

        With telemetry enabled, a bank transitioning from free to gated
        emits a ``quota_trip`` trace event, and the ``quota.banks_gated``
        gauge reflects the gate population for the epoch that now begins
        (so it is sampled at the *next* epoch close, describing the epoch
        it governed).
        """
        self.previous_periods += 1
        tel = self._tel
        gated_count = 0
        for bank in range(self.num_banks):
            exceed = self.exceed_quota(bank)
            gated = exceed > 0.0
            if gated:
                self.slow_only_periods += 1
                gated_count += 1
                if tel.enabled and not self.slow_only[bank]:
                    tel.tracer.record(
                        tel.clock(), EV_QUOTA_TRIP, bank=bank,
                        detail=f"exceed={exceed:.4g}",
                    )
                    if self._trips is not None:
                        self._trips.value += 1.0
            self.slow_only[bank] = gated
        if self._gated_gauge is not None:
            self._gated_gauge.set(float(gated_count))

    def is_slow_only(self, bank: int) -> bool:
        return self.slow_only[bank]

    def reset_statistics(self) -> None:
        """Clear accumulated wear (used when the warmup window ends).

        The per-bank slow-only gates are *kept*: they represent the
        mechanism's current control state, not a statistic, and dropping
        them would give every measurement window one ungated burst period.
        """
        self.cumulative_wear = [0.0] * self.num_banks
        self.previous_periods = 0
        self.slow_only_periods = 0
