"""Eager Mellow Writes (Section IV-B) - mechanism facade.

The mechanism spans two hardware blocks, and its implementation lives with
the block that owns the state:

* **LLC side** (Section IV-B1, "Identifying Eager Mellow Writes"):
  :class:`repro.cache.profiler.StackProfiler` keeps the per-LRU-position
  hit counters and computes the *eager position* every sample period;
  :meth:`repro.cache.llc.LastLevelCache.pick_eager_candidate` samples a
  random set and hands out the least-recently-used dirty line in the
  useless region, marking it clean but resident.
* **Controller side** (Section IV-B2, "Performing Eager Mellow Writes"):
  the 16-entry Eager Mellow Queue
  (:class:`repro.memory.queues.RequestQueue` named ``eager``) has the
  lowest priority, never triggers write drains, and issues only slow
  writes, only when its bank has no read- or write-queue requests
  (:meth:`repro.memory.controller.MemoryController._select_request`).

This module re-exports the pieces so the paper's contribution is
navigable from ``repro.core`` alongside Bank-Aware and Wear Quota, and
provides the storage-overhead accounting of Section IV-E.

Observability: the mechanism's telemetry follows the same ownership
split.  The LLC side emits ``eager_demote`` trace events and the
``llc.eager_demotions`` counter plus the per-epoch stack-position probes
(``llc.stack_hits.pNN``, ``llc.stack_misses``, ``llc.eager_position``);
the controller side counts ``ctrl.eager_issued`` and tracks the eager
queue through ``queue.eager.depth`` / ``queue.eager.peak``.
:data:`EAGER_TELEMETRY_SERIES` enumerates them for tooling.
"""

from __future__ import annotations

import math

from repro import params
from repro.cache.deadblock import DeadBlockPredictor
from repro.cache.llc import DEADBLOCK_SELECTOR, STACK_SELECTOR, LastLevelCache
from repro.cache.profiler import StackProfiler

__all__ = [
    "DEADBLOCK_SELECTOR",
    "DeadBlockPredictor",
    "EAGER_TELEMETRY_SERIES",
    "LastLevelCache",
    "STACK_SELECTOR",
    "StackProfiler",
    "eager_storage_overhead_bits",
]

#: Telemetry series emitted by the Eager Mellow Writes mechanism (fixed
#: names; the ``llc.stack_hits.pNN`` probes add one series per LLC way).
EAGER_TELEMETRY_SERIES = (
    "llc.eager_demotions",
    "llc.eager_position",
    "llc.stack_misses",
    "ctrl.eager_issued",
    "queue.eager.depth",
    "queue.eager.peak",
)


def eager_storage_overhead_bits(
    llc_assoc: int = params.LLC_ASSOC,
    sample_period_ns: float = params.PROFILE_PERIOD_NS,
    proc_clk_ns: float = params.CPU_CLK_NS,
) -> int:
    """LLC-side storage cost of Eager Mellow Writes (Section IV-E).

    One hit counter per LRU position plus a miss counter and a cycle
    counter, each wide enough to count a full sample period of processor
    cycles: ceil(log2(T_sample / T_clk)) * (assoc + 2) bits - 360 bits for
    the paper's 16-way LLC and 500 us period.
    """
    counter_bits = math.ceil(math.log2(sample_period_ns / proc_clk_ns))
    return counter_bits * (llc_assoc + 2)
