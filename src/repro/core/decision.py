"""The Figure-9 write-speed decision tree.

For each bank the controller looks for a write to perform:

* single request in the write queue            -> slow write;
* multiple requests, Wear Quota exceeded       -> slow write;
* multiple requests, quota fine                -> normal write;
* no write-queue request, eager request exists -> slow write (from the
  Eager Mellow Queue).

Static policies short-circuit the tree: ``Slow`` always returns slow,
``Norm`` always normal (except when +WQ gates the bank).  ``E-Norm`` issues
even eager writes at normal speed (its design point is maximum performance).
"""

from __future__ import annotations

from repro.core.bank_aware import bank_aware_wants_slow
from repro.core.policies import WritePolicy
from repro.memory.queues import EAGER, WRITE
from repro.telemetry import NULL_TELEMETRY, Telemetry


def choose_write_factor(
    policy: WritePolicy,
    kind: str,
    other_writes_for_bank: int,
    reads_for_bank: int,
    quota_exceeded: bool,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> float:
    """Slowdown factor for the write being issued (1.0 = normal speed).

    The binary policies return either 1.0 or ``policy.slow_factor``.  With
    ``multi_latency`` (the paper's Section VI-I future work), a bank with
    exactly one other queued write gets the intermediate ``mid_factor``
    instead of dropping straight to normal speed.
    """
    slow = choose_write_speed(
        policy, kind, other_writes_for_bank, reads_for_bank, quota_exceeded,
        telemetry=telemetry,
    )
    if slow:
        return policy.slow_factor
    if (
        policy.multi_latency
        and kind == WRITE
        and other_writes_for_bank == 1
        and reads_for_bank == 0
    ):
        return policy.mid_factor
    return 1.0


def choose_write_speed(
    policy: WritePolicy,
    kind: str,
    other_writes_for_bank: int,
    reads_for_bank: int,
    quota_exceeded: bool,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> bool:
    """Return True when the write should be issued slow.

    Args:
        policy: the active write policy.
        kind: WRITE (from the write queue) or EAGER (from the eager queue).
        other_writes_for_bank: same-bank write-queue occupancy excluding the
            request being issued.
        reads_for_bank: same-bank read-queue occupancy.
        quota_exceeded: Wear Quota slow-only gate for the bank (only honoured
            when the policy enables +WQ).
        telemetry: passed through to the Bank-Aware predicate so its
            decision mix is counted when telemetry is enabled.
    """
    if kind == EAGER:
        if not policy.eager:
            raise ValueError("eager request under a non-eager policy")
        return policy.eager_slow
    if kind != WRITE:
        raise ValueError(f"not a write kind: {kind!r}")

    if policy.all_slow:
        return True
    if policy.wear_quota and quota_exceeded:
        return True
    if policy.bank_aware:
        return bank_aware_wants_slow(other_writes_for_bank, reads_for_bank,
                                     telemetry=telemetry)
    return False
