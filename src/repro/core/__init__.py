"""The paper's contribution: Mellow Writes policies and decisions.

Bank-Aware Mellow Writes (Sec. IV-A), Eager Mellow Writes (Sec. IV-B),
Wear Quota (Sec. IV-C), the Figure-9 decision tree and the Table III
policy algebra.
"""
