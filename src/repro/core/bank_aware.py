"""Bank-Aware Mellow Writes (Section IV-A).

The scheme makes its decision at bank granularity: a write request may be
issued as a slow write only when there are no *other* operations (reads or
writes) queued for the same bank.  Reads always have priority over writes,
so by the time a write is selected for issue its bank has no queued reads;
the remaining condition is therefore "no other write queued for this bank".
"""

from __future__ import annotations

from repro.telemetry import NULL_TELEMETRY, Telemetry


def bank_aware_wants_slow(other_writes_for_bank: int, reads_for_bank: int,
                          telemetry: Telemetry = NULL_TELEMETRY) -> bool:
    """Decide whether Bank-Aware Mellow Writes issues this write slowly.

    Args:
        other_writes_for_bank: write-queue requests for the same bank,
            excluding the write being issued (Figure 5: a second waiting
            write forces normal speed to keep drain pressure down).
        reads_for_bank: read-queue requests for the same bank.  Under
            read-priority scheduling this is zero whenever a write is
            actually selected, but the predicate checks it anyway so it can
            be used standalone (Figure 4 shows both conditions).
        telemetry: when enabled, the decision outcome is counted
            (``decision.bank_aware.slow`` / ``decision.bank_aware.normal``)
            so the slow-vs-fast mix can be plotted per epoch.
    """
    if other_writes_for_bank < 0 or reads_for_bank < 0:
        raise ValueError("request counts cannot be negative")
    wants_slow = other_writes_for_bank == 0 and reads_for_bank == 0
    if telemetry.enabled:
        name = ("decision.bank_aware.slow" if wants_slow
                else "decision.bank_aware.normal")
        telemetry.metrics.counter(name).value += 1.0
    return wants_slow
