"""Plain-text table formatting for the benchmark harness.

Every figure/table regenerator returns a :class:`Table`; ``render`` prints
it in the aligned layout the bench output files record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class Table:
    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def render(table: Table) -> str:
    """Render a table as aligned monospace text."""
    header = [str(c) for c in table.columns]
    body = [[_format_cell(v) for v in row] for row in table.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {table.title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
