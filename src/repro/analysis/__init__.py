"""Post-processing: lifetime re-evaluation, table rendering, CSV/JSON
export, terminal charts, and analytic result validation."""
