"""Export rendered tables as CSV/JSON for external plotting."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from repro.analysis.report import Table

PathLike = Union[str, Path]


def table_to_csv(table: Table) -> str:
    """Serialise a :class:`Table` to CSV text (header + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def table_to_json(table: Table) -> str:
    """Serialise a :class:`Table` to a JSON document.

    Layout: ``{"title", "columns", "rows": [ {col: value} ], "notes"}`` -
    row dicts rather than arrays so downstream pandas/vega loading is a
    one-liner.
    """
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    return json.dumps({
        "title": table.title,
        "columns": list(table.columns),
        "rows": rows,
        "notes": list(table.notes),
    }, indent=2, default=str)


def write_table(table: Table, path: PathLike) -> Path:
    """Write a table to ``path``; format chosen by suffix (.csv/.json)."""
    path = Path(path)
    if path.suffix == ".csv":
        path.write_text(table_to_csv(table))
    elif path.suffix == ".json":
        path.write_text(table_to_json(table))
    else:
        raise ValueError(f"unsupported export format: {path.suffix!r}")
    return path
