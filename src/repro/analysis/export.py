"""Export rendered tables and run results as CSV/JSON for external plotting."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import fields
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.analysis.report import Table
from repro.sim.stats import RunResult

PathLike = Union[str, Path]


def table_to_csv(table: Table) -> str:
    """Serialise a :class:`Table` to CSV text (header + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(row)
    return buffer.getvalue()


def table_to_json(table: Table) -> str:
    """Serialise a :class:`Table` to a JSON document.

    Layout: ``{"title", "columns", "rows": [ {col: value} ], "notes"}`` -
    row dicts rather than arrays so downstream pandas/vega loading is a
    one-liner.
    """
    rows = [dict(zip(table.columns, row)) for row in table.rows]
    return json.dumps({
        "title": table.title,
        "columns": list(table.columns),
        "rows": rows,
        "notes": list(table.notes),
    }, indent=2, default=str)


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """JSON-ready dump of a :class:`RunResult`, composites included.

    Field iteration is driven by ``dataclasses.fields`` so a field added
    to RunResult shows up in exports automatically instead of being
    silently dropped; only ``wear_records`` gets bespoke encoding, as a
    per-bank breakdown (bank index, normal/slow tallies per factor, and
    the derived total) rather than bare objects.
    """
    data: Dict[str, Any] = {}
    for field_info in fields(result):
        if field_info.name == "wear_records":
            continue
        data[field_info.name] = getattr(result, field_info.name)
    data["wear_records"] = [
        {
            "bank": index,
            "normal_writes": record.normal_writes,
            "slow_writes_by_factor": {
                str(factor): count
                for factor, count in sorted(
                    record.slow_writes_by_factor.items())
            },
            "total_writes": record.total_writes,
        }
        for index, record in enumerate(result.wear_records)
    ]
    return data


#: Telemetry bundle files embedded into a ``--telemetry`` export.  The
#: trace files are referenced by path instead: they can be orders of
#: magnitude larger than the result document.
_EMBEDDED_TELEMETRY_FILES = ("manifest.json", "metrics.json", "heatmap.json")


def write_run_result(result: RunResult, path: PathLike,
                     telemetry: Optional[PathLike] = None) -> Path:
    """Write one run's full JSON export, optionally bundling telemetry.

    With ``telemetry`` pointing at a bundle directory (as produced by
    :meth:`repro.telemetry.Telemetry.write`), the manifest, metric time
    series and wear heatmap are embedded under a ``"telemetry"`` key and
    the trace files are referenced by absolute path.
    """
    path = Path(path)
    document: Dict[str, Any] = {"result": run_result_to_dict(result)}
    if telemetry is not None:
        bundle = Path(telemetry)
        embedded: Dict[str, Any] = {"bundle_dir": str(bundle.resolve())}
        for name in _EMBEDDED_TELEMETRY_FILES:
            file_path = bundle / name
            if file_path.is_file():
                embedded[name.removesuffix(".json")] = json.loads(
                    file_path.read_text())
        embedded["trace_files"] = [
            str((bundle / name).resolve())
            for name in ("trace.jsonl", "trace.chrome.json")
            if (bundle / name).is_file()
        ]
        document["telemetry"] = embedded
    path.write_text(json.dumps(document, indent=2, default=str))
    return path


def write_table(table: Table, path: PathLike) -> Path:
    """Write a table to ``path``; format chosen by suffix (.csv/.json)."""
    path = Path(path)
    if path.suffix == ".csv":
        path.write_text(table_to_csv(table))
    elif path.suffix == ".json":
        path.write_text(table_to_json(table))
    else:
        raise ValueError(f"unsupported export format: {path.suffix!r}")
    return path
