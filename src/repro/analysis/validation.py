"""Analytic cross-checks on simulation results.

A trace-driven simulator can silently drift (double-counted busy time,
lost completions, wear/energy bookkeeping skew).  These validators
re-derive quantities from independent counters and flag disagreements;
the test suite runs them on every integration run, and users can call
:func:`validate_result` on their own results.

Checks:

* **busy-time consistency** - bank-busy time implied by the issued
  operation mix brackets the reported utilization;
* **bus capacity** - data transferred never exceeds what the shared
  64-bit bus can move in the window;
* **lifetime re-derivation** - the reported lifetime equals the analytic
  formula applied to the recorded per-bank write mix;
* **request conservation** - issued >= completed-equivalents, MPKI
  consistent with misses and instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import params
from repro.endurance.model import EnduranceModel
from repro.memory.timing import MemoryTiming
from repro.sim.stats import RunResult


@dataclass
class ValidationReport:
    failures: List[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def check(self, condition: bool, message: str) -> None:
        self.checks_run += 1
        if not condition:
            self.failures.append(message)

    def raise_if_failed(self) -> None:
        if self.failures:
            raise AssertionError(
                "result validation failed:\n  " + "\n  ".join(self.failures)
            )


def expected_busy_time_ns(result: RunResult,
                          timing: MemoryTiming = None) -> float:
    """Bank-busy time implied by the issued operation mix (no bus waits)."""
    timing = timing if timing is not None else MemoryTiming(
        slow_factor=result.slow_factor,
    )
    busy = (
        result.read_row_hits * timing.read_service_ns(row_hit=True)
        + result.read_row_misses * timing.read_service_ns(row_hit=False)
        + result.writes_issued_normal * timing.write_service_ns(slow=False)
        + result.writes_issued_slow * timing.write_service_ns(slow=True)
    )
    # Cancelled/paused attempts occupied their bank only partially;
    # subtract the unexecuted portion pessimistically (a full slow pulse
    # per interrupt).  Paused writes additionally re-issue with only the
    # remaining pulse, so each pause overstates the issue mix by up to one
    # pulse as well.
    interrupts = result.cancellations + result.pauses
    busy -= interrupts * timing.write_pulse_ns(slow=True)
    return max(0.0, busy)


def validate_result(result: RunResult) -> ValidationReport:
    report = ValidationReport()
    timing = MemoryTiming(slow_factor=result.slow_factor)

    # --- busy time vs reported utilization -------------------------------
    window_capacity = result.window_ns * result.num_banks
    if window_capacity > 0:
        floor = expected_busy_time_ns(result, timing) / window_capacity
        # Bus waits can only lengthen occupancy, so the reported value may
        # exceed the analytic floor, never undercut it by much (boundary
        # ops straddling the window edges allow a small tolerance).
        report.check(
            result.bank_utilization >= floor * 0.85 - 0.02,
            f"utilization {result.bank_utilization:.3f} below analytic "
            f"floor {floor:.3f}",
        )
        report.check(
            result.bank_utilization <= 1.0 + 1e-9,
            f"utilization {result.bank_utilization:.3f} exceeds 1.0",
        )

    # --- bus capacity -----------------------------------------------------
    if result.window_ns > 0:
        transfers = result.reads_issued + result.writes_issued_total
        bus_time = transfers * timing.burst_ns
        report.check(
            bus_time <= result.window_ns * 1.05 + 1000,
            f"bus moved {transfers} lines needing {bus_time:.0f} ns in a "
            f"{result.window_ns:.0f} ns window",
        )

    # --- lifetime re-derivation --------------------------------------------
    if result.wear_records and result.window_ns > 0:
        model = EnduranceModel(expo_factor=result.expo_factor)
        capacity = (result.blocks_per_bank * model.base_endurance
                    * result.leveling_efficiency)
        worst = float("inf")
        for record in result.wear_records:
            damage = record.damage(model)
            if damage > 0:
                worst = min(worst, result.window_ns * capacity / damage)
        derived_years = worst / params.NS_PER_YEAR
        if derived_years == float("inf"):
            report.check(
                result.lifetime_years == float("inf"),
                "result reports finite lifetime but wear records are empty",
            )
        else:
            report.check(
                abs(derived_years - result.lifetime_years)
                <= 1e-6 * max(1.0, derived_years),
                f"lifetime {result.lifetime_years:.3f} y != derived "
                f"{derived_years:.3f} y",
            )

    # --- request conservation ----------------------------------------------
    report.check(
        result.read_row_hits + result.read_row_misses == result.reads_issued,
        "row hit/miss split does not sum to issued reads",
    )
    report.check(
        result.reads_issued >= result.llc_misses * 0.9,
        f"{result.reads_issued} reads issued for {result.llc_misses} misses",
    )
    if result.instructions > 0:
        derived_mpki = result.llc_misses * 1000.0 / result.instructions
        report.check(
            abs(derived_mpki - result.mpki) < 1e-6,
            f"mpki {result.mpki:.3f} != derived {derived_mpki:.3f}",
        )

    # --- energy decomposition ------------------------------------------------
    report.check(
        result.read_energy_pj >= 0 and result.write_energy_pj >= 0,
        "negative energy component",
    )
    if result.writes_issued_total > 0:
        report.check(
            result.write_energy_pj > 0,
            "writes issued but zero write energy",
        )
    return report
