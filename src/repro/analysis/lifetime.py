"""Lifetime post-processing utilities.

The central trick (used for Figure 17): a run's timing never depends on the
endurance exponent, so one simulation per (workload, policy) provides the
lifetime under *every* Expo_Factor via the recorded per-bank write mix.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from repro import params
from repro.sim.stats import RunResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; values are floored at a tiny epsilon for safety."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def capped(lifetime_years: float, cap: float = 1e4) -> float:
    """Clamp infinite/huge lifetimes so ratios stay meaningful."""
    return min(lifetime_years, cap)


def lifetime_sweep(result: RunResult,
                   expo_factors: Sequence[float] = params.EXPO_FACTORS,
                   ) -> Dict[float, float]:
    """Lifetime (years) of one run under each endurance exponent."""
    return {expo: result.lifetime_for_expo(expo) for expo in expo_factors}


def relative_lifetimes(results: Dict[str, RunResult],
                       baseline: str = "Norm") -> Dict[str, float]:
    """Per-policy lifetime normalised to the baseline policy."""
    base = capped(results[baseline].lifetime_years)
    return {
        name: capped(result.lifetime_years) / base
        for name, result in results.items()
    }


def relative_ipcs(results: Dict[str, RunResult],
                  baseline: str = "Norm") -> Dict[str, float]:
    """Per-policy IPC normalised to the baseline policy."""
    base = results[baseline].ipc
    return {name: result.ipc / base for name, result in results.items()}


def meets_lifetime_target(result: RunResult,
                          target_years: float = params.TARGET_LIFETIME_YEARS,
                          tolerance: float = 0.25) -> bool:
    """Whether a run satisfies the lifetime guarantee.

    Wear Quota gates only at sample-period boundaries, so a short
    measurement window can end while a post-burst catch-up is still in
    progress; the paper's guarantee is asymptotic.  ``tolerance`` allows
    for that truncation (25% by default).
    """
    return result.lifetime_years >= target_years * (1.0 - tolerance)


def best_static_policy(results: Dict[str, RunResult],
                       target_years: float = params.TARGET_LIFETIME_YEARS,
                       ) -> str:
    """Figure 19's red diamond: the static policy with the highest IPC among
    those that reach the lifetime target; falls back to the longest-lived
    policy when none qualifies."""
    qualifying = {
        name: r for name, r in results.items()
        if r.lifetime_years >= target_years
    }
    if qualifying:
        return max(qualifying, key=lambda name: qualifying[name].ipc)
    return max(results, key=lambda name: results[name].lifetime_years)
