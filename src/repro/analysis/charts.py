"""Terminal bar charts for examples and quick-look analysis.

No plotting dependency is available offline, so the examples render
figure-style comparisons as unicode bars.  Values are scaled to the
longest bar; an optional reference line (e.g. the 8-year lifetime floor)
is marked on each bar.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

_FULL = "#"
_REFERENCE = "|"


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    reference: Optional[float] = None,
    reference_label: str = "",
    unit: str = "",
) -> str:
    """Render labelled horizontal bars.

    Args:
        items: (label, value) pairs, drawn in order.
        width: character budget for the longest bar.
        reference: draw a vertical marker at this value on every row.
        reference_label: legend text for the reference marker.
        unit: appended to the numeric value of each row.
    """
    if not items:
        raise ValueError("nothing to chart")
    if width < 4:
        raise ValueError("width must be >= 4")
    values = [value for _, value in items]
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values + ([reference] if reference else []))
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in items)
    lines: List[str] = []
    for label, value in items:
        filled = round(value / peak * width)
        bar = list(_FULL * filled + " " * (width - filled))
        if reference is not None:
            position = min(width - 1, round(reference / peak * width))
            bar[position] = _REFERENCE
        lines.append(
            f"{label.ljust(label_width)}  {''.join(bar)}  "
            f"{value:,.2f}{unit}"
        )
    if reference is not None and reference_label:
        lines.append(f"{' ' * label_width}  ({_REFERENCE} = {reference_label})")
    return "\n".join(lines)


def comparison_chart(
    groups: Iterable[Tuple[str, Sequence[Tuple[str, float]]]],
    width: int = 40,
    reference: Optional[float] = None,
    unit: str = "",
) -> str:
    """Several titled bar charts stacked with blank separators."""
    sections = []
    for title, items in groups:
        sections.append(title)
        sections.append(bar_chart(items, width=width, reference=reference,
                                  unit=unit))
        sections.append("")
    return "\n".join(sections).rstrip()
