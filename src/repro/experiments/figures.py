"""Regenerators for every table and figure in the paper's evaluation.

Each ``figNN``/``tabNN`` function runs (or fetches from cache) the
simulations behind one exhibit and returns a :class:`Table` whose rows are
the series the paper plots.  The benchmark harness prints these tables;
EXPERIMENTS.md records them against the paper's published values.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro import params
from repro.analysis.lifetime import (
    best_static_policy,
    capped,
    geomean,
    lifetime_sweep,
    relative_ipcs,
    relative_lifetimes,
)
from repro.analysis.report import Table
from repro.core.policies import PAPER_POLICY_NAMES
from repro.endurance.model import EnduranceModel
from repro.energy.nvsim import table_vi_rows
from repro.experiments.faults import figfaults_survival
from repro.experiments.runner import Runner, default_runner, selected_workloads
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult
from repro.workloads.profiles import PROFILES

STATIC_FACTORS = (1.0, 1.5, 2.0, 3.0)


def _runner(runner: Optional[Runner]) -> Runner:
    return runner if runner is not None else default_runner()


def _policy_sweep(runner: Runner, workloads: Sequence[str],
                  policies: Sequence[str] = PAPER_POLICY_NAMES,
                  **config_kwargs) -> Dict[str, Dict[str, RunResult]]:
    """{workload: {policy: result}} for the main evaluation matrix.

    The whole grid goes through :meth:`Runner.sweep` in one batch so cache
    misses simulate in parallel (``REPRO_JOBS`` workers).
    """
    grid = [
        SimConfig(workload=workload, policy=policy, **config_kwargs)
        for workload in workloads for policy in policies
    ]
    results = iter(runner.sweep(grid))
    return {
        workload: {policy: next(results) for policy in policies}
        for workload in workloads
    }


def _static_config(workload: str, factor: float, cancellable: bool,
                   eager: bool = False) -> SimConfig:
    """A fixed-latency, fixed-policy configuration (Figures 2 and 19).

    ``factor == 1.0`` is the plain normal-write system (Norm); larger
    factors run every write at that slowdown (Slow at that latency).
    Cancellation applies to whichever speed the writes use.
    """
    if factor == 1.0:
        base = "E-Norm" if eager else "Norm"
        name = base + ("+NC" if cancellable else "")
    else:
        base = "E-Slow" if eager else "Slow"
        name = base + ("+SC" if cancellable else "")
    return SimConfig(workload=workload, policy=name, slow_factor=factor)


def static_policy_label(factor: float, cancellable: bool,
                        eager: bool = False) -> str:
    prefix = "E-" if eager else ""
    wc = "+WC" if cancellable else ""
    return f"{prefix}{factor:.1f}x{wc}"


# ---------------------------------------------------------------------------
# Figure 1 / Section II
# ---------------------------------------------------------------------------

def fig01_endurance_model(latency_points: int = 13) -> Table:
    """Endurance vs write latency for Expo_Factor 1.0..3.0 (analytic)."""
    table = Table(
        title="Figure 1: write latency vs endurance",
        columns=["latency_ns", "slow_factor"] + [
            f"expo_{e}" for e in params.EXPO_FACTORS
        ],
    )
    for i in range(latency_points):
        factor = 1.0 + i * 0.25
        latency = factor * params.T_WP_NORMAL_NS
        endurances = [
            EnduranceModel(expo_factor=e).endurance_at_factor(factor)
            for e in params.EXPO_FACTORS
        ]
        table.add_row(latency, factor, *endurances)
    table.notes.append(
        "anchored at 150 ns -> 5e6 writes; Table II ladder falls on the "
        "expo_2.0 column"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 2 / Figure 3 (motivation)
# ---------------------------------------------------------------------------

def fig02_static_latency(runner: Optional[Runner] = None,
                         workloads: Optional[Sequence[str]] = None) -> Table:
    """IPC and lifetime under static 1.0-3.0x writes, with/without WC."""
    runner = _runner(runner)
    workloads = selected_workloads(workloads)
    table = Table(
        title="Figure 2: static write latencies (normalized IPC, lifetime)",
        columns=["workload", "policy", "ipc", "ipc_vs_norm", "lifetime_years"],
    )
    runner.sweep([                      # parallel prefetch; loops hit memo
        _static_config(workload, factor, cancellable)
        for workload in workloads
        for factor in STATIC_FACTORS
        for cancellable in (False, True)
    ])
    for workload in workloads:
        base = runner.scaled(_static_config(workload, 1.0, False))
        for factor in STATIC_FACTORS:
            for cancellable in (False, True):
                result = runner.scaled(
                    _static_config(workload, factor, cancellable)
                )
                table.add_row(
                    workload,
                    static_policy_label(factor, cancellable),
                    result.ipc,
                    result.ipc / base.ipc,
                    capped(result.lifetime_years),
                )
    return table


def fig03_bank_utilization(runner: Optional[Runner] = None,
                           workloads: Optional[Sequence[str]] = None) -> Table:
    """Average bank utilization with normal writes."""
    runner = _runner(runner)
    workloads = selected_workloads(workloads)
    table = Table(
        title="Figure 3: average bank utilization (Norm)",
        columns=["workload", "bank_utilization"],
    )
    results = runner.sweep(
        [SimConfig(workload=workload, policy="Norm") for workload in workloads]
    )
    for workload, result in zip(workloads, results):
        table.add_row(workload, result.bank_utilization)
    return table


# ---------------------------------------------------------------------------
# Table IV (workloads), Table V/VI (energy parameters)
# ---------------------------------------------------------------------------

def tab04_workload_mpki(runner: Optional[Runner] = None,
                        workloads: Optional[Sequence[str]] = None) -> Table:
    runner = _runner(runner)
    workloads = selected_workloads(workloads)
    table = Table(
        title="Table IV: workload MPKI with a 2 MB LLC",
        columns=["workload", "mpki_measured", "mpki_paper"],
    )
    results = runner.sweep(
        [SimConfig(workload=workload, policy="Norm") for workload in workloads]
    )
    for workload, result in zip(workloads, results):
        table.add_row(workload, result.mpki, PROFILES[workload].mpki_paper)
    return table


def tab06_energy_per_op() -> Table:
    table = Table(
        title="Table VI: energy per operation of memristive main memory",
        columns=["cell", "buffer_read_pj", "norm_write_pj", "slow_write_pj",
                 "slow_norm_ratio"],
    )
    for row in table_vi_rows():
        table.add_row(row["cell"], row["buffer_read_pj"],
                      row["norm_write_pj"], row["slow_write_pj"],
                      row["slow_norm_ratio"])
    return table


# ---------------------------------------------------------------------------
# Figures 10-16 (main evaluation)
# ---------------------------------------------------------------------------

def _main_matrix_table(runner: Optional[Runner], workloads,
                       title: str, metric_columns, extract,
                       average: str = "geomean") -> Table:
    runner = _runner(runner)
    workloads = selected_workloads(workloads)
    sweep = _policy_sweep(runner, workloads)
    table = Table(title=title,
                  columns=["workload", "policy"] + list(metric_columns))
    for workload in workloads:
        for policy in PAPER_POLICY_NAMES:
            table.add_row(workload, policy, *extract(sweep[workload], policy))
    # Suite-level summary rows.  Ratios aggregate geometrically (the
    # paper's convention); fractions-of-time aggregate arithmetically
    # (a geomean of values containing zero is always zero).
    label = "GEOMEAN" if average == "geomean" else "MEAN"
    for policy in PAPER_POLICY_NAMES:
        values = []
        for i, _col in enumerate(metric_columns):
            per_wl = [
                extract(sweep[workload], policy)[i] for workload in workloads
            ]
            if average == "geomean":
                values.append(geomean([max(v, 1e-12) for v in per_wl]))
            else:
                values.append(sum(per_wl) / len(per_wl))
        table.add_row(label, policy, *values)
    return table


def fig10_policy_ipc(runner: Optional[Runner] = None,
                     workloads: Optional[Sequence[str]] = None) -> Table:
    def extract(results, policy):
        rel = relative_ipcs(results)
        return (results[policy].ipc, rel[policy])
    return _main_matrix_table(
        runner, workloads, "Figure 10: IPC by write policy",
        ["ipc", "ipc_vs_norm"], extract,
    )


def fig11_policy_lifetime(runner: Optional[Runner] = None,
                          workloads: Optional[Sequence[str]] = None) -> Table:
    def extract(results, policy):
        rel = relative_lifetimes(results)
        return (capped(results[policy].lifetime_years), rel[policy])
    return _main_matrix_table(
        runner, workloads, "Figure 11: resistive memory lifetime (years)",
        ["lifetime_years", "lifetime_vs_norm"], extract,
    )


def fig12_policy_utilization(runner: Optional[Runner] = None,
                             workloads: Optional[Sequence[str]] = None) -> Table:
    def extract(results, policy):
        return (results[policy].bank_utilization,)
    return _main_matrix_table(
        runner, workloads, "Figure 12: average bank utilization by policy",
        ["bank_utilization"], extract, average="mean",
    )


def fig13_write_drain(runner: Optional[Runner] = None,
                      workloads: Optional[Sequence[str]] = None) -> Table:
    def extract(results, policy):
        return (results[policy].drain_fraction,)
    return _main_matrix_table(
        runner, workloads, "Figure 13: fraction of time in write drain",
        ["drain_fraction"], extract, average="mean",
    )


def fig14_llc_requests(runner: Optional[Runner] = None,
                       workloads: Optional[Sequence[str]] = None) -> Table:
    """Memory requests sent by the LLC, normalised to Norm's total."""
    def extract(results, policy):
        result = results[policy]
        base = results["Norm"]
        base_total = base.llc_misses + base.writebacks
        reads = result.llc_misses / base_total
        writes = result.writebacks / base_total
        eager = result.eager_writebacks / base_total
        return (reads, writes, eager, reads + writes + eager)
    return _main_matrix_table(
        runner, workloads,
        "Figure 14: memory requests from LLC (normalized to Norm)",
        ["reads", "writebacks", "eager_writebacks", "total"], extract,
    )


def fig15_bank_requests(runner: Optional[Runner] = None,
                        workloads: Optional[Sequence[str]] = None) -> Table:
    """Requests issued to banks (cancelled re-issues included)."""
    def extract(results, policy):
        result = results[policy]
        base = results["Norm"].requests_issued_total
        return (
            result.reads_issued / base,
            result.writes_issued_total / base,
            result.cancellations / base,
            result.requests_issued_total / base,
        )
    return _main_matrix_table(
        runner, workloads,
        "Figure 15: requests issued to banks (normalized to Norm)",
        ["reads", "writes", "cancelled", "total"], extract,
    )


def fig16_energy(runner: Optional[Runner] = None,
                 workloads: Optional[Sequence[str]] = None) -> Table:
    """Main-memory energy (CellC), normalised to Norm."""
    def extract(results, policy):
        result = results[policy]
        base = results["Norm"].total_energy_pj
        return (
            result.read_energy_pj / base,
            result.write_energy_pj / base,
            result.total_energy_pj / base,
        )
    return _main_matrix_table(
        runner, workloads,
        "Figure 16: main memory energy (CellC, normalized to Norm)",
        ["read_energy", "write_energy", "total_energy"], extract,
    )


# ---------------------------------------------------------------------------
# Figure 17 (Expo_Factor sensitivity)
# ---------------------------------------------------------------------------

def fig17_expo_sensitivity(runner: Optional[Runner] = None,
                           workloads: Optional[Sequence[str]] = None) -> Table:
    """Geomean lifetime vs Norm for each Expo_Factor, per policy.

    Re-evaluated from the recorded write mixes - no re-simulation, because
    write timing is independent of the endurance exponent.
    """
    runner = _runner(runner)
    workloads = selected_workloads(workloads)
    policies = ("Norm", "Slow+SC", "BE-Mellow+SC")
    sweep = _policy_sweep(runner, workloads, policies=policies)
    table = Table(
        title="Figure 17: lifetime sensitivity to Expo_Factor "
              "(geomean lifetime normalized to Norm at the same exponent)",
        columns=["policy"] + [f"expo_{e}" for e in params.EXPO_FACTORS],
    )
    for policy in policies:
        ratios = []
        for expo in params.EXPO_FACTORS:
            per_wl = []
            for workload in workloads:
                base = capped(sweep[workload]["Norm"].lifetime_for_expo(expo))
                mine = capped(sweep[workload][policy].lifetime_for_expo(expo))
                per_wl.append(mine / base)
            ratios.append(geomean(per_wl))
        table.add_row(policy, *ratios)
    table.notes.append(
        "paper: BE-Mellow+SC is still >= 1.47x Norm at Expo_Factor 1.0"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 18 (bank-level-parallelism sensitivity)
# ---------------------------------------------------------------------------

def fig18_bank_sensitivity(runner: Optional[Runner] = None,
                           workload: str = "GemsFDTD") -> Table:
    runner = _runner(runner)
    table = Table(
        title=f"Figure 18: {workload} sensitivity to bank count",
        columns=["banks", "policy", "lifetime_years", "bank_utilization",
                 "eager_writes", "normal_writes_issued",
                 "slow_writes_issued"],
    )
    runner.sweep([                      # parallel prefetch; loop hits memo
        SimConfig(workload=workload, policy=policy,
                  num_banks=banks, num_ranks=ranks)
        for banks, ranks in params.BANK_OPTIONS
        for policy in ("Norm", "BE-Mellow+SC")
    ])
    for banks, ranks in params.BANK_OPTIONS:
        for policy in ("Norm", "BE-Mellow+SC"):
            result = runner.scaled(SimConfig(
                workload=workload, policy=policy,
                num_banks=banks, num_ranks=ranks,
            ))
            table.add_row(
                banks, policy, capped(result.lifetime_years),
                result.bank_utilization, result.eager_issued,
                result.writes_issued_normal, result.writes_issued_slow,
            )
    return table


# ---------------------------------------------------------------------------
# Figure 19 (Mellow Writes vs static policies)
# ---------------------------------------------------------------------------

def fig19_vs_static(runner: Optional[Runner] = None,
                    workloads: Optional[Sequence[str]] = None) -> Table:
    runner = _runner(runner)
    workloads = selected_workloads(workloads)
    table = Table(
        title="Figure 19: BE-Mellow+SC+WQ vs static policies "
              "(8-year lifetime constraint)",
        columns=["workload", "policy", "ipc", "lifetime_years",
                 "meets_8y", "is_best_static", "mellow_vs_best_static"],
    )
    runner.sweep(                       # parallel prefetch; loops hit memo
        [_static_config(workload, factor, cancellable)
         for workload in workloads
         for factor in STATIC_FACTORS
         for cancellable in (False, True)]
        + [_static_config(workload, factor, True, eager=True)
           for workload in workloads for factor in (1.0, 3.0)]
        + [SimConfig(workload=workload, policy="BE-Mellow+SC+WQ")
           for workload in workloads]
    )
    for workload in workloads:
        statics: Dict[str, RunResult] = {}
        for factor in STATIC_FACTORS:
            for cancellable in (False, True):
                label = static_policy_label(factor, cancellable)
                statics[label] = runner.scaled(
                    _static_config(workload, factor, cancellable)
                )
        # The paper also evaluates the eager variants as statics.
        statics[static_policy_label(1.0, True, eager=True)] = runner.scaled(
            _static_config(workload, 1.0, True, eager=True)
        )
        statics[static_policy_label(3.0, True, eager=True)] = runner.scaled(
            _static_config(workload, 3.0, True, eager=True)
        )
        best = best_static_policy(statics)
        mellow = runner.scaled(
            SimConfig(workload=workload, policy="BE-Mellow+SC+WQ")
        )
        for label, result in statics.items():
            table.add_row(
                workload, label, result.ipc,
                capped(result.lifetime_years),
                result.lifetime_years >= params.TARGET_LIFETIME_YEARS,
                label == best, "",
            )
        ratio = mellow.ipc / statics[best].ipc
        table.add_row(
            workload, "BE-Mellow+SC+WQ", mellow.ipc,
            capped(mellow.lifetime_years),
            mellow.lifetime_years >= params.TARGET_LIFETIME_YEARS * 0.75,
            False, f"{ratio:.3f}",
        )
    return table


ALL_FIGURES = {
    "fig01": fig01_endurance_model,
    "fig02": fig02_static_latency,
    "fig03": fig03_bank_utilization,
    "tab04": tab04_workload_mpki,
    "tab06": tab06_energy_per_op,
    "fig10": fig10_policy_ipc,
    "fig11": fig11_policy_lifetime,
    "fig12": fig12_policy_utilization,
    "fig13": fig13_write_drain,
    "fig14": fig14_llc_requests,
    "fig15": fig15_bank_requests,
    "fig16": fig16_energy,
    "fig17": fig17_expo_sensitivity,
    "fig18": fig18_bank_sensitivity,
    "fig19": fig19_vs_static,
    "figfaults": figfaults_survival,
}
