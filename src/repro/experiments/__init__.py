"""Experiment regenerators: one callable per paper exhibit + studies.

``ALL_FIGURES`` maps exhibit ids (fig01..fig19, tab04, tab06) to
regenerator callables; ``ALL_ABLATIONS`` the ablation studies.  The
benchmark harness and the CLI (`python -m repro figure <id>`) both
resolve through these registries.
"""

from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.headline import headline_summary
from repro.experiments.runner import (
    Runner,
    SweepProgress,
    cache_clear,
    cache_stats,
    cache_verify,
    default_jobs,
    default_runner,
)
from repro.experiments.seeds import seed_stability

__all__ = [
    "ALL_ABLATIONS",
    "ALL_FIGURES",
    "Runner",
    "SweepProgress",
    "cache_clear",
    "cache_stats",
    "cache_verify",
    "default_jobs",
    "default_runner",
    "headline_summary",
    "seed_stability",
]
