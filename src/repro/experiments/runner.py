"""Parallel sweep driver with a persistent, concurrency-safe result cache.

Figures 10-16 all read the same 11x9 (workload x policy) sweep; the cache
lets each bench regenerate its figure without re-simulating runs another
bench already produced.  Results are stored as versioned JSON entries keyed
by a digest of the full :class:`SimConfig`, so any parameter change
invalidates cleanly.

:meth:`Runner.sweep` fans cache misses out over a
``concurrent.futures.ProcessPoolExecutor``.  Each run is seeded entirely by
its config, so parallel results are bit-identical to serial ones; workers
return plain dicts and the parent process owns all cache writes.  Cache
writes are atomic (write-to-temp + ``os.replace``) so concurrent sweeps
sharing one cache directory can never expose a half-written entry, and any
unreadable entry - truncated JSON, schema drift, a stale pre-versioning
file - logs a warning and falls back to re-simulation instead of crashing.

Environment knobs:

* ``REPRO_SCALE``       - scale factor on window lengths (default 1.0;
  benches use ~0.25 for quick runs).
* ``REPRO_JOBS``        - worker processes for sweeps (default: all cores).
* ``REPRO_WORKLOADS``   - comma-separated subset of workloads to sweep.
* ``REPRO_CACHE_DIR``   - cache location (default ``.repro_cache`` in cwd).
* ``REPRO_NO_CACHE=1``  - disable the persistent cache.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.endurance.wear import BankWearRecord
from repro.sim.config import SimConfig, digest_for_key
from repro.sim.stats import RunResult
from repro.sim.system import run_simulation
from repro.telemetry import bundle_is_complete
from repro.workloads.profiles import WORKLOAD_NAMES

logger = logging.getLogger(__name__)

#: Bump whenever the on-disk entry layout or RunResult serialisation
#: changes; entries with any other version re-simulate.
CACHE_SCHEMA_VERSION = 3

#: RunResult fields with structured (non-scalar) serialisations.
_COMPOSITE_FIELDS = ("bank_utilizations", "wear_records")

#: Derived from the dataclass itself so a field added to RunResult is
#: serialised automatically instead of being silently dropped; a new
#: composite field must be added to _COMPOSITE_FIELDS (and given explicit
#: encode/decode logic below) or it will round-trip as-is and fail the
#: strict key check in result_from_dict.
_SCALAR_FIELDS = [
    f.name for f in fields(RunResult) if f.name not in _COMPOSITE_FIELDS
]


class CacheEntryError(RuntimeError):
    """A cache file exists but cannot be trusted (corrupt or stale)."""


def result_to_dict(result: RunResult) -> dict:
    data = {name: getattr(result, name) for name in _SCALAR_FIELDS}
    data["bank_utilizations"] = list(result.bank_utilizations)
    data["wear_records"] = [
        {
            "normal": record.normal_writes,
            "slow": {str(k): v for k, v in record.slow_writes_by_factor.items()},
        }
        for record in result.wear_records
    ]
    return data


def result_from_dict(data: dict) -> RunResult:
    # Strict key-set check: a payload written by a different RunResult
    # layout (field added or removed) must read as a cache miss, not load
    # with fields quietly zeroed.
    expected = set(_SCALAR_FIELDS) | set(_COMPOSITE_FIELDS)
    actual = set(data)
    if actual != expected:
        raise ValueError(
            "RunResult payload keys drifted: "
            f"missing={sorted(expected - actual)} "
            f"unexpected={sorted(actual - expected)}"
        )
    data = dict(data)
    bank_utilizations = data.pop("bank_utilizations")
    records = []
    for item in data.pop("wear_records"):
        record = BankWearRecord(normal_writes=item["normal"])
        record.slow_writes_by_factor = {
            float(k): v for k, v in item["slow"].items()
        }
        records.append(record)
    result = RunResult(**data)
    result.wear_records = records
    result.bank_utilizations = bank_utilizations
    return result


def entry_to_json(config: SimConfig, result: RunResult) -> str:
    """Serialise one cache entry (schema version + key + result)."""
    return json.dumps({
        "schema": CACHE_SCHEMA_VERSION,
        "key": list(config.cache_key()),
        "result": result_to_dict(result),
    })


def entry_from_json(text: str) -> RunResult:
    """Parse a cache entry, raising :class:`CacheEntryError` on anything
    short of a well-formed current-schema entry."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise CacheEntryError(f"invalid JSON: {error}") from error
    if not isinstance(data, dict) or "schema" not in data:
        raise CacheEntryError("pre-versioning cache entry")
    if data["schema"] != CACHE_SCHEMA_VERSION:
        raise CacheEntryError(
            f"schema {data['schema']!r} != {CACHE_SCHEMA_VERSION}"
        )
    try:
        return result_from_dict(data["result"])
    except (KeyError, TypeError, ValueError) as error:
        raise CacheEntryError(f"undecodable result: {error!r}") from error


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` so readers never see a partial file.

    The temp file lives in the target directory so ``os.replace`` stays on
    one filesystem and is atomic; concurrent writers of the same key
    last-write-win with either complete entry.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def scale_factor() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def default_jobs() -> int:
    """Worker count for parallel sweeps (``REPRO_JOBS``, default all cores)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


def selected_workloads(default: Optional[Sequence[str]] = None) -> List[str]:
    env = os.environ.get("REPRO_WORKLOADS")
    if env:
        names = [n.strip() for n in env.split(",") if n.strip()]
        unknown = set(names) - set(WORKLOAD_NAMES)
        if unknown:
            raise ValueError(f"unknown workloads in REPRO_WORKLOADS: {unknown}")
        return names
    return list(default if default is not None else WORKLOAD_NAMES)


@dataclass(frozen=True)
class SweepProgress:
    """One per-run completion report delivered to a sweep's callback."""

    completed: int
    total: int
    config: SimConfig
    result: RunResult
    from_cache: bool


ProgressCallback = Callable[[SweepProgress], None]


def _simulate_to_dict(config: SimConfig) -> dict:
    """Worker entry point: simulate and return a plain-dict result.

    Returning a dict (rather than a RunResult) keeps the IPC payload
    decoupled from dataclass layout and is exactly what the parent writes
    to disk; the parent process owns all cache traffic.  Telemetry is the
    one exception: when the config carries a ``telemetry_dir`` the worker
    writes the bundle itself at end of run (atomically, manifest last),
    so no telemetry payload crosses the process boundary.
    """
    return result_to_dict(run_simulation(config))


class Runner:
    """Runs configs through the simulator with memo + disk caching."""

    def __init__(self, cache_dir: Optional[Path] = None) -> None:
        if cache_dir is None:
            cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
        self.cache_dir = cache_dir
        self.disk_cache = os.environ.get("REPRO_NO_CACHE", "0") != "1"
        self._memo: Dict[tuple, RunResult] = {}
        self.simulated = 0
        self.cache_hits = 0

    def _path_for(self, config: SimConfig) -> Path:
        return self.cache_dir / f"{config.cache_digest()}.json"

    def _telemetry_path(self, config: SimConfig) -> Path:
        """Default telemetry bundle location: next to the cache entry."""
        return self.cache_dir / f"{config.cache_digest()}.telemetry"

    def _with_telemetry_dir(self, config: SimConfig) -> SimConfig:
        """Give a telemetry-enabled config a concrete output directory.

        Filling the default in here (rather than inside the simulator)
        keeps telemetry files co-located with the cache entry of the same
        digest.  ``telemetry_dir`` is not part of cache_key(), so this
        substitution never changes cache identity.
        """
        if config.telemetry and config.telemetry_dir is None:
            return replace(
                config, telemetry_dir=str(self._telemetry_path(config)))
        return config

    @staticmethod
    def _telemetry_satisfied(config: SimConfig) -> bool:
        """Whether a cached result alone satisfies this config.

        A telemetry-enabled config also needs a complete bundle on disk;
        if it is missing, the run re-simulates (producing a bit-identical
        result, since telemetry never perturbs the simulation) purely to
        regenerate the bundle.
        """
        if not config.telemetry or config.telemetry_dir is None:
            return True
        return bundle_is_complete(Path(config.telemetry_dir))

    def _load_disk(self, config: SimConfig) -> Optional[RunResult]:
        """Fetch from disk; any unreadable entry warns and reads as a miss."""
        if not self.disk_cache:
            return None
        path = self._path_for(config)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as error:
            logger.warning("cache read failed for %s (%s); re-simulating",
                           path, error)
            return None
        try:
            return entry_from_json(text)
        except CacheEntryError as error:
            logger.warning("discarding cache entry %s (%s); re-simulating",
                           path, error)
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _store(self, config: SimConfig, result: RunResult) -> None:
        self._memo[config.cache_key()] = result
        if self.disk_cache:
            atomic_write_text(self._path_for(config),
                              entry_to_json(config, result))

    def peek(self, config: SimConfig) -> Optional[RunResult]:
        """A cached result if one exists - never simulates.

        The ``repro serve`` submission path uses this to answer a job
        whose digest is already in the cache without occupying a
        worker; a hit counts toward ``cache_hits`` exactly like a hit
        inside :meth:`run`.
        """
        key = config.cache_key()
        if not self._telemetry_satisfied(config):
            return None
        if key in self._memo:
            self.cache_hits += 1
            return self._memo[key]
        result = self._load_disk(config)
        if result is not None:
            self._memo[key] = result
            self.cache_hits += 1
        return result

    def run(self, config: SimConfig) -> RunResult:
        config = self._with_telemetry_dir(config)
        key = config.cache_key()
        if self._telemetry_satisfied(config):
            if key in self._memo:
                self.cache_hits += 1
                return self._memo[key]
            result = self._load_disk(config)
            if result is not None:
                self._memo[key] = result
                self.cache_hits += 1
                return result
        result = run_simulation(config)
        self.simulated += 1
        self._store(config, result)
        return result

    def run_traced(self, config: SimConfig) -> "tuple[RunResult, Path]":
        """Run with telemetry forced on; returns (result, bundle dir).

        The result is bit-identical to an untraced run of the same config
        and shares its cache entry; the second element is the directory
        holding the telemetry bundle (metrics/heatmap/traces/manifest).
        """
        config = self._with_telemetry_dir(
            replace(config, telemetry=True))
        result = self.run(config)
        assert config.telemetry_dir is not None
        return result, Path(config.telemetry_dir)

    def scaled(self, config: SimConfig) -> RunResult:
        """Run with window lengths scaled by REPRO_SCALE."""
        return self.run(self._scaled_config(config))

    def _scaled_config(self, config: SimConfig) -> SimConfig:
        factor = scale_factor()
        if factor != 1.0:
            config = config.scaled(factor)
        return config

    def sweep(self, configs: Iterable[SimConfig],
              jobs: Optional[int] = None,
              progress: Optional[ProgressCallback] = None,
              apply_env_scale: bool = True,
              ) -> List[RunResult]:
        """Run a grid of configs, fanning cache misses out over processes.

        Results come back in input order and are bit-identical to a serial
        sweep: every run is deterministic given its config, and duplicate
        configs in the grid simulate once.  ``jobs`` defaults to
        ``REPRO_JOBS`` (or all cores); ``progress`` receives one
        :class:`SweepProgress` per completed run.

        ``apply_env_scale=False`` skips the ``REPRO_SCALE`` rescaling:
        callers that computed digests from the configs *as given* (the
        ``repro serve`` job API) need execution and identity to agree
        even when the environment carries a scale override.
        """
        if apply_env_scale:
            configs = [self._scaled_config(c) for c in configs]
        configs = [self._with_telemetry_dir(c) for c in configs]
        total = len(configs)
        jobs = default_jobs() if jobs is None else max(1, jobs)
        results: Dict[int, RunResult] = {}
        completed = 0

        def report(index: int, result: RunResult, from_cache: bool) -> None:
            nonlocal completed
            completed += 1
            if progress is not None:
                progress(SweepProgress(
                    completed=completed, total=total, config=configs[index],
                    result=result, from_cache=from_cache,
                ))

        # Resolve memo/disk hits up front; group the misses by cache key
        # (plus telemetry destination - a traced and an untraced grid
        # point share a result but not a bundle) so duplicate grid points
        # cost one simulation.
        miss_indices: Dict[tuple, List[int]] = {}
        for i, config in enumerate(configs):
            group = (config.cache_key(), config.telemetry,
                     config.telemetry_dir)
            if group in miss_indices:
                miss_indices[group].append(i)
                continue
            key = config.cache_key()
            if self._telemetry_satisfied(config):
                if key in self._memo:
                    self.cache_hits += 1
                    results[i] = self._memo[key]
                    report(i, results[i], from_cache=True)
                    continue
                cached = self._load_disk(config)
                if cached is not None:
                    self._memo[key] = cached
                    self.cache_hits += 1
                    results[i] = cached
                    report(i, cached, from_cache=True)
                    continue
            miss_indices[group] = [i]

        def finish(indices: List[int], result: RunResult) -> None:
            self.simulated += 1
            self._store(configs[indices[0]], result)
            for j, index in enumerate(indices):
                if j:
                    self.cache_hits += 1
                results[index] = result
                report(index, result, from_cache=bool(j))

        misses = list(miss_indices.values())
        if len(misses) <= 1 or jobs <= 1:
            for indices in misses:
                finish(indices, run_simulation(configs[indices[0]]))
        else:
            workers = min(jobs, len(misses))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_simulate_to_dict, configs[indices[0]]):
                        indices
                    for indices in misses
                }
                for future in as_completed(futures):
                    finish(futures[future], result_from_dict(future.result()))

        return [results[i] for i in range(total)]


# ---------------------------------------------------------------------------
# Cache maintenance (backs the ``repro cache`` CLI subcommand)
# ---------------------------------------------------------------------------

def resolve_cache_dir(cache_dir: Optional[Path] = None) -> Path:
    if cache_dir is not None:
        return Path(cache_dir)
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def cache_stats(cache_dir: Optional[Path] = None) -> dict:
    """Entry count / footprint / health summary of one cache directory."""
    directory = resolve_cache_dir(cache_dir)
    stats = {
        "cache_dir": str(directory),
        "entries": 0,
        "total_bytes": 0,
        "valid": 0,
        "invalid": 0,
        "schema_versions": {},
        "telemetry_bundles": 0,
    }
    if not directory.is_dir():
        return stats
    for bundle in directory.glob("*.telemetry"):
        if bundle.is_dir():
            stats["telemetry_bundles"] += 1
    for path in sorted(directory.glob("*.json")):
        stats["entries"] += 1
        stats["total_bytes"] += path.stat().st_size
        try:
            data = json.loads(path.read_text())
            schema = data.get("schema", "unversioned")
        except (json.JSONDecodeError, OSError, AttributeError):
            schema = "corrupt"
        key = str(schema)
        stats["schema_versions"][key] = stats["schema_versions"].get(key, 0) + 1
        if schema == CACHE_SCHEMA_VERSION:
            stats["valid"] += 1
        else:
            stats["invalid"] += 1
    return stats


def cache_verify(cache_dir: Optional[Path] = None) -> dict:
    """Deep-check every entry: parseable, current schema, digest matches.

    A digest mismatch means the file was renamed or the key inside was
    tampered with/drifted; such entries would never be read back and only
    waste space.
    """
    directory = resolve_cache_dir(cache_dir)
    report = {"cache_dir": str(directory), "ok": 0, "bad": []}
    if not directory.is_dir():
        return report
    for path in sorted(directory.glob("*.json")):
        try:
            entry_from_json(path.read_text())
            data = json.loads(path.read_text())
            expected = digest_for_key(data["key"]) + ".json"
            if path.name != expected:
                raise CacheEntryError(
                    f"digest mismatch (expected {expected})"
                )
        except (CacheEntryError, OSError) as error:
            report["bad"].append({"path": str(path), "error": str(error)})
        else:
            report["ok"] += 1
    return report


def cache_clear(cache_dir: Optional[Path] = None) -> int:
    """Delete all cache entries, telemetry bundles and stray temp files;
    returns the count of entries removed (a bundle counts as one)."""
    directory = resolve_cache_dir(cache_dir)
    removed = 0
    if not directory.is_dir():
        return removed
    for pattern in ("*.json", "*.tmp"):
        for path in directory.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    for bundle in directory.glob("*.telemetry"):
        if bundle.is_dir():
            try:
                shutil.rmtree(bundle)
                removed += 1
            except OSError:
                pass
    return removed


_default_runner: Optional[Runner] = None


def default_runner() -> Runner:
    global _default_runner
    if _default_runner is None:
        _default_runner = Runner()
    return _default_runner
