"""Parallel sweep driver over a pluggable, concurrency-safe result store.

Figures 10-16 all read the same 11x9 (workload x policy) sweep; the cache
lets each bench regenerate its figure without re-simulating runs another
bench already produced.  Results are stored as versioned JSON entries
(:mod:`repro.store.codec`) keyed by a digest of the full
:class:`SimConfig`, so any parameter change invalidates cleanly.

Where those bytes live is the :mod:`repro.store` layer's business: the
runner talks to one :class:`~repro.store.Store` (directory of files,
single SQLite database, in-memory dict, or a tiered composition) selected
by ``REPRO_CACHE_URL``.  Backend choice never enters a cache key, so the
same config yields bit-identical entries in every backend and ``repro
cache sync`` can replicate a warm cache anywhere.

:meth:`Runner.sweep` fans cache misses out over a
``concurrent.futures.ProcessPoolExecutor``.  Each run is seeded entirely by
its config, so parallel results are bit-identical to serial ones; workers
return plain dicts and the parent process owns all store traffic.  Entry
commits are atomic per backend (write-to-temp + ``os.replace``, or one
SQLite transaction) so concurrent sweeps sharing one store can never
expose a half-written entry, and any unreadable entry - truncated JSON,
schema drift, a stale pre-versioning file - logs a warning and falls back
to re-simulation instead of crashing.

Environment knobs:

* ``REPRO_SCALE``       - scale factor on window lengths (default 1.0;
  benches use ~0.25 for quick runs).
* ``REPRO_JOBS``        - worker processes for sweeps (default: all cores).
* ``REPRO_WORKLOADS``   - comma-separated subset of workloads to sweep.
* ``REPRO_CACHE_URL``   - store backend (``file:<dir>``, ``sqlite:<db>``,
  ``memory:``, ``tiered:<local>|<remote>``; see ``docs/storage.md``).
* ``REPRO_CACHE_DIR``   - cache directory (default ``.repro_cache``);
  a file-backend shorthand that ``REPRO_CACHE_URL`` overrides.
* ``REPRO_NO_CACHE=1``  - nothing persists (an in-memory store is
  injected in place of the configured backend).
"""

from __future__ import annotations

import logging
import os
import shutil
import tempfile
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                as_completed, wait)
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

# Serialisation lives in repro.store.codec these days; re-exported here
# because this module is the historic home every caller imports from.
from repro.sim.config import SimConfig, digest_for_key  # noqa: F401  (re-export)
from repro.sim.stats import RunResult
from repro.sim.system import run_simulation
from repro.store import (
    CACHE_SCHEMA_VERSION,
    CacheEntryError,
    Store,
    atomic_write_text,
    cache_clear,
    cache_stats,
    cache_verify,
    entry_from_json,
    entry_to_json,
    export_bundle_dir,
    read_bundle_dir,
    resolve_store,
    result_from_dict,
    result_to_dict,
)
from repro.telemetry import bundle_is_complete
from repro.workloads.profiles import WORKLOAD_NAMES

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntryError",
    "ProgressCallback",
    "Runner",
    "SweepProgress",
    "atomic_write_text",
    "cache_clear",
    "cache_stats",
    "cache_verify",
    "default_jobs",
    "default_runner",
    "entry_from_json",
    "entry_to_json",
    "resolve_cache_dir",
    "result_from_dict",
    "result_to_dict",
    "scale_factor",
    "selected_workloads",
]

logger = logging.getLogger(__name__)


def scale_factor() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def default_jobs() -> int:
    """Worker count for parallel sweeps (``REPRO_JOBS``, default all cores)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


def selected_workloads(default: Optional[Sequence[str]] = None) -> List[str]:
    env = os.environ.get("REPRO_WORKLOADS")
    if env:
        names = [n.strip() for n in env.split(",") if n.strip()]
        unknown = set(names) - set(WORKLOAD_NAMES)
        if unknown:
            raise ValueError(f"unknown workloads in REPRO_WORKLOADS: {unknown}")
        return names
    return list(default if default is not None else WORKLOAD_NAMES)


@dataclass(frozen=True)
class SweepProgress:
    """One per-run completion report delivered to a sweep's callback."""

    completed: int
    total: int
    config: SimConfig
    result: RunResult
    from_cache: bool


ProgressCallback = Callable[[SweepProgress], None]


def _simulate_to_dict(config: SimConfig) -> dict:
    """Worker entry point: simulate and return a plain-dict result.

    Returning a dict (rather than a RunResult) keeps the IPC payload
    decoupled from dataclass layout and is exactly what the parent writes
    to the store; the parent process owns all store traffic.  Telemetry is
    the one exception: when the config carries a ``telemetry_dir`` the
    worker writes the bundle itself at end of run (atomically, manifest
    last) - for filesystem-native backends that directory *is* the stored
    bundle, for every other backend the parent ingests it afterwards.
    """
    return result_to_dict(run_simulation(config))


def _advance_slice(config: SimConfig, snapshot_path: Optional[str],
                   next_snapshot_path: str) -> tuple:
    """Worker entry point for sliced sweeps: run one checkpoint segment.

    The first slice of a run starts from the config; later slices resume
    from the snapshot the previous slice (possibly in a *different*
    process) wrote.  Returns ``("pending", path)`` after writing the next
    snapshot, or ``("done", result_dict)`` when the run completed.

    A snapshot that fails validation - truncated, bit-flipped, or from a
    mismatched environment - is not fatal: the worker warns and
    re-simulates the whole run from scratch, which is bit-identical to
    the interrupted one (the checkpoint equivalence contract), exactly
    like the store layer's unreadable-entry fallback.
    """
    from repro.checkpoint import CheckpointError, restore_system, save_snapshot
    from repro.sim.system import System

    if snapshot_path is None:
        system = System(config)
        system.start_run()
    else:
        try:
            system = restore_system(snapshot_path)
        except (CheckpointError, FileNotFoundError, OSError) as error:
            logger.warning(
                "snapshot %s unusable (%s); re-simulating from scratch",
                snapshot_path, error)
            return ("done", _simulate_to_dict(config))
    result = system.continue_run()
    if result is None:
        save_snapshot(system, next_snapshot_path)
        return ("pending", next_snapshot_path)
    return ("done", result_to_dict(result))


class Runner:
    """Runs configs through the simulator with memo + store caching."""

    def __init__(self, cache_dir: Optional[Path] = None,
                 store: Optional[Store] = None) -> None:
        if store is None:
            store = resolve_store(cache_dir=cache_dir)
        self.store = store
        # Kept for file-backend introspection (tests, legacy tooling);
        # None whenever entries do not live in a directory.
        self.cache_dir: Optional[Path] = getattr(store, "root", None)
        self._memo: Dict[tuple, RunResult] = {}
        self.simulated = 0
        self.cache_hits = 0

    def _path_for(self, config: SimConfig) -> Path:
        path = self.store.entry_path(config.cache_digest())
        if path is None:
            raise RuntimeError(
                f"{self.store.kind} store keeps entries internally; "
                "there is no per-entry file path")
        return path

    def _telemetry_path(self, config: SimConfig) -> Path:
        """Default telemetry bundle location for this store.

        Filesystem-native backends expose the bundle's real home
        (zero-copy: the simulator writes the bundle in place); all others
        get a per-store staging directory whose bundles are ingested via
        :meth:`Store.put_bundle` after the run.
        """
        digest = config.cache_digest()
        native = self.store.bundle_path(digest)
        if native is not None:
            return native
        return self.store.staging_root() / f"{digest}.telemetry"

    def _with_telemetry_dir(self, config: SimConfig) -> SimConfig:
        """Give a telemetry-enabled config a concrete output directory.

        Filling the default in here (rather than inside the simulator)
        keeps telemetry bundles keyed by the cache digest of the same
        run.  ``telemetry_dir`` is not part of cache_key(), so this
        substitution never changes cache identity.
        """
        if config.telemetry and config.telemetry_dir is None:
            return replace(
                config, telemetry_dir=str(self._telemetry_path(config)))
        return config

    def _telemetry_satisfied(self, config: SimConfig) -> bool:
        """Whether a cached result alone satisfies this config.

        A telemetry-enabled config also needs a complete bundle; if it is
        missing, the run re-simulates (producing a bit-identical result,
        since telemetry never perturbs the simulation) purely to
        regenerate the bundle.  Runner-managed destinations defer to the
        store (which may hold the bundle internally); a user-chosen
        ``telemetry_dir`` must be complete on disk where the user asked.
        """
        if not config.telemetry or config.telemetry_dir is None:
            return True
        if config.telemetry_dir == str(self._telemetry_path(config)):
            return self.store.has_bundle(config.cache_digest())
        return bundle_is_complete(Path(config.telemetry_dir))

    def _load_store(self, config: SimConfig) -> Optional[RunResult]:
        """Fetch from the store; any unreadable entry warns and reads as
        a miss."""
        digest = config.cache_digest()
        try:
            data = self.store.get(digest)
        except OSError as error:
            logger.warning("cache read failed for %s (%s); re-simulating",
                           self.store.location(digest), error)
            return None
        if data is None:
            return None
        try:
            return entry_from_json(data.decode("utf-8"))
        except (CacheEntryError, UnicodeDecodeError) as error:
            logger.warning("discarding cache entry %s (%s); re-simulating",
                           self.store.location(digest), error)
            self.store.delete(digest)
            return None

    def _ingest_bundle(self, config: SimConfig) -> None:
        """Commit a freshly simulated staging bundle into the store.

        No-op for filesystem-native backends (the simulator already wrote
        the bundle into the store's own layout) and for user-chosen
        destinations (the bundle stays where the user asked).
        """
        if not config.telemetry or config.telemetry_dir is None:
            return
        digest = config.cache_digest()
        if self.store.bundle_path(digest) is not None:
            return
        if config.telemetry_dir != str(self._telemetry_path(config)):
            return
        files = read_bundle_dir(Path(config.telemetry_dir))
        if files is not None:
            self.store.put_bundle(digest, files)

    def _store_result(self, config: SimConfig, result: RunResult) -> None:
        self._memo[config.cache_key()] = result
        self.store.put(config.cache_digest(),
                       entry_to_json(config, result).encode("utf-8"))
        self._ingest_bundle(config)

    def peek(self, config: SimConfig) -> Optional[RunResult]:
        """A cached result if one exists - never simulates.

        The ``repro serve`` submission path uses this to answer a job
        whose digest is already in the cache without occupying a
        worker; a hit counts toward ``cache_hits`` exactly like a hit
        inside :meth:`run`.
        """
        key = config.cache_key()
        if not self._telemetry_satisfied(config):
            return None
        if key in self._memo:
            self.cache_hits += 1
            return self._memo[key]
        result = self._load_store(config)
        if result is not None:
            self._memo[key] = result
            self.cache_hits += 1
        return result

    def run(self, config: SimConfig) -> RunResult:
        config = self._with_telemetry_dir(config)
        key = config.cache_key()
        if self._telemetry_satisfied(config):
            if key in self._memo:
                self.cache_hits += 1
                return self._memo[key]
            result = self._load_store(config)
            if result is not None:
                self._memo[key] = result
                self.cache_hits += 1
                return result
        result = run_simulation(config)
        self.simulated += 1
        self._store_result(config, result)
        return result

    def run_traced(self, config: SimConfig) -> "tuple[RunResult, Path]":
        """Run with telemetry forced on; returns (result, bundle dir).

        The result is bit-identical to an untraced run of the same config
        and shares its cache entry; the second element is the directory
        holding the telemetry bundle (metrics/heatmap/traces/manifest).
        Backends that keep bundles internally (sqlite, memory) export the
        stored bundle into the returned directory on cache hits, so the
        caller always finds real files there.
        """
        config = self._with_telemetry_dir(
            replace(config, telemetry=True))
        result = self.run(config)
        assert config.telemetry_dir is not None
        bundle_dir = Path(config.telemetry_dir)
        if not bundle_is_complete(bundle_dir):
            files = self.store.get_bundle(config.cache_digest())
            if files is not None:
                export_bundle_dir(files, bundle_dir)
        return result, bundle_dir

    def scaled(self, config: SimConfig) -> RunResult:
        """Run with window lengths scaled by REPRO_SCALE."""
        return self.run(self._scaled_config(config))

    def _scaled_config(self, config: SimConfig) -> SimConfig:
        factor = scale_factor()
        if factor != 1.0:
            config = config.scaled(factor)
        return config

    def sweep(self, configs: Iterable[SimConfig],
              jobs: Optional[int] = None,
              progress: Optional[ProgressCallback] = None,
              apply_env_scale: bool = True,
              ) -> List[RunResult]:
        """Run a grid of configs, fanning cache misses out over processes.

        Results come back in input order and are bit-identical to a serial
        sweep: every run is deterministic given its config, and duplicate
        configs in the grid simulate once.  ``jobs`` defaults to
        ``REPRO_JOBS`` (or all cores); ``progress`` receives one
        :class:`SweepProgress` per completed run.

        ``apply_env_scale=False`` skips the ``REPRO_SCALE`` rescaling:
        callers that computed digests from the configs *as given* (the
        ``repro serve`` job API) need execution and identity to agree
        even when the environment carries a scale override.
        """
        if apply_env_scale:
            configs = [self._scaled_config(c) for c in configs]
        configs = [self._with_telemetry_dir(c) for c in configs]
        total = len(configs)
        jobs = default_jobs() if jobs is None else max(1, jobs)
        results: Dict[int, RunResult] = {}
        completed = 0

        def report(index: int, result: RunResult, from_cache: bool) -> None:
            nonlocal completed
            completed += 1
            if progress is not None:
                progress(SweepProgress(
                    completed=completed, total=total, config=configs[index],
                    result=result, from_cache=from_cache,
                ))

        # Resolve memo/store hits up front; group the misses by cache key
        # (plus telemetry destination - a traced and an untraced grid
        # point share a result but not a bundle) so duplicate grid points
        # cost one simulation.
        miss_indices: Dict[tuple, List[int]] = {}
        for i, config in enumerate(configs):
            group = (config.cache_key(), config.telemetry,
                     config.telemetry_dir)
            if group in miss_indices:
                miss_indices[group].append(i)
                continue
            key = config.cache_key()
            if self._telemetry_satisfied(config):
                if key in self._memo:
                    self.cache_hits += 1
                    results[i] = self._memo[key]
                    report(i, results[i], from_cache=True)
                    continue
                cached = self._load_store(config)
                if cached is not None:
                    self._memo[key] = cached
                    self.cache_hits += 1
                    results[i] = cached
                    report(i, cached, from_cache=True)
                    continue
            miss_indices[group] = [i]

        def finish(indices: List[int], result: RunResult) -> None:
            self.simulated += 1
            self._store_result(configs[indices[0]], result)
            for j, index in enumerate(indices):
                if j:
                    self.cache_hits += 1
                results[index] = result
                report(index, result, from_cache=bool(j))

        misses = list(miss_indices.values())
        if len(misses) <= 1 or jobs <= 1:
            for indices in misses:
                finish(indices, run_simulation(configs[indices[0]]))
        else:
            workers = min(jobs, len(misses))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_simulate_to_dict, configs[indices[0]]):
                        indices
                    for indices in misses
                }
                for future in as_completed(futures):
                    finish(futures[future], result_from_dict(future.result()))

        return [results[i] for i in range(total)]

    def sweep_sliced(self, configs: Iterable[SimConfig],
                     jobs: Optional[int] = None,
                     progress: Optional[ProgressCallback] = None,
                     apply_env_scale: bool = True,
                     checkpoint_dir: Optional[Path] = None,
                     ) -> List[RunResult]:
        """Like :meth:`sweep`, but time-slices each run via checkpoints.

        A config carrying ``checkpoint_every`` runs as a chain of
        resumable segments: whichever worker is free picks up the next
        slice from the snapshot the previous slice wrote, so a
        long-horizon study scatters *seeds x time slices* across the
        pool instead of pinning each seed to one process for its whole
        lifetime.  Slicing is bit-identical to straight-through
        execution (``tests/test_checkpoint.py``), so results, cache
        entries, and return order are exactly those of :meth:`sweep` on
        the same grid - configs without ``checkpoint_every`` simply run
        as a single slice.

        Intermediate snapshots live in ``checkpoint_dir`` (a private
        temporary directory by default, removed afterwards); each is
        deleted as soon as its successor slice completes, so disk usage
        stays at one snapshot per in-flight run.
        """
        if apply_env_scale:
            configs = [self._scaled_config(c) for c in configs]
        configs = [self._with_telemetry_dir(c) for c in configs]
        total = len(configs)
        jobs = default_jobs() if jobs is None else max(1, jobs)
        results: Dict[int, RunResult] = {}
        completed = 0

        def report(index: int, result: RunResult, from_cache: bool) -> None:
            nonlocal completed
            completed += 1
            if progress is not None:
                progress(SweepProgress(
                    completed=completed, total=total, config=configs[index],
                    result=result, from_cache=from_cache,
                ))

        miss_indices: Dict[tuple, List[int]] = {}
        for i, config in enumerate(configs):
            group = (config.cache_key(), config.telemetry,
                     config.telemetry_dir)
            if group in miss_indices:
                miss_indices[group].append(i)
                continue
            key = config.cache_key()
            if self._telemetry_satisfied(config):
                if key in self._memo:
                    self.cache_hits += 1
                    results[i] = self._memo[key]
                    report(i, results[i], from_cache=True)
                    continue
                cached = self._load_store(config)
                if cached is not None:
                    self._memo[key] = cached
                    self.cache_hits += 1
                    results[i] = cached
                    report(i, cached, from_cache=True)
                    continue
            miss_indices[group] = [i]

        def finish(indices: List[int], result: RunResult) -> None:
            self.simulated += 1
            self._store_result(configs[indices[0]], result)
            for j, index in enumerate(indices):
                if j:
                    self.cache_hits += 1
                results[index] = result
                report(index, result, from_cache=bool(j))

        misses = list(miss_indices.values())
        own_dir = checkpoint_dir is None
        directory = (Path(tempfile.mkdtemp(prefix="repro-slices-"))
                     if own_dir else Path(checkpoint_dir))
        directory.mkdir(parents=True, exist_ok=True)
        try:
            if len(misses) <= 1 or jobs <= 1:
                # Serial path: still slice through snapshot files so the
                # single-process study exercises the same save/restore
                # chain the pool does.
                for run_number, indices in enumerate(misses):
                    config = configs[indices[0]]
                    previous: Optional[str] = None
                    slice_number = 0
                    while True:
                        slice_number += 1
                        target = directory / self._slice_name(
                            config, run_number, slice_number)
                        status, payload = _advance_slice(
                            config, previous, str(target))
                        if previous is not None:
                            Path(previous).unlink(missing_ok=True)
                        if status == "done":
                            finish(indices, result_from_dict(payload))
                            break
                        previous = payload
            else:
                workers = min(jobs, len(misses))
                slice_counts: Dict[int, int] = {}
                previous_paths: Dict[int, Optional[str]] = {}
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {}
                    for run_number, indices in enumerate(misses):
                        config = configs[indices[0]]
                        slice_counts[run_number] = 1
                        previous_paths[run_number] = None
                        target = directory / self._slice_name(
                            config, run_number, 1)
                        future = pool.submit(_advance_slice, config, None,
                                             str(target))
                        futures[future] = (run_number, indices)
                    while futures:
                        done, _pending = wait(futures,
                                              return_when=FIRST_COMPLETED)
                        for future in done:
                            run_number, indices = futures.pop(future)
                            config = configs[indices[0]]
                            status, payload = future.result()
                            consumed = previous_paths[run_number]
                            if consumed is not None:
                                Path(consumed).unlink(missing_ok=True)
                            if status == "done":
                                finish(indices, result_from_dict(payload))
                                continue
                            previous_paths[run_number] = payload
                            slice_counts[run_number] += 1
                            target = directory / self._slice_name(
                                config, run_number,
                                slice_counts[run_number])
                            next_future = pool.submit(
                                _advance_slice, config, payload,
                                str(target))
                            futures[next_future] = (run_number, indices)
        finally:
            if own_dir:
                shutil.rmtree(directory, ignore_errors=True)

        return [results[i] for i in range(total)]

    @staticmethod
    def _slice_name(config: SimConfig, run_number: int,
                    slice_number: int) -> str:
        return (f"{config.cache_digest()}-{run_number:04d}"
                f"-slice-{slice_number:04d}.ckpt")


# ---------------------------------------------------------------------------
# Cache maintenance (backs the ``repro cache`` CLI subcommand)
#
# The implementations live in repro.store.maintenance and speak to any
# backend; cache_stats / cache_verify / cache_clear are re-exported above.
# ---------------------------------------------------------------------------

def resolve_cache_dir(cache_dir: Optional[Path] = None) -> Path:
    """Historic file-backend cache location (pre-URL callers)."""
    if cache_dir is not None:
        return Path(cache_dir)
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


_default_runner: Optional[Runner] = None


def default_runner() -> Runner:
    global _default_runner
    if _default_runner is None:
        _default_runner = Runner()
    return _default_runner
