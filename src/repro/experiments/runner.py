"""Sweep driver with a persistent result cache.

Figures 10-16 all read the same 11x9 (workload x policy) sweep; the cache
lets each bench regenerate its figure without re-simulating runs another
bench already produced.  Results are stored as JSON keyed by a hash of the
full :class:`SimConfig`, so any parameter change invalidates cleanly.

Environment knobs:

* ``REPRO_SCALE``       - scale factor on window lengths (default 1.0;
  benches use ~0.25 for quick runs).
* ``REPRO_WORKLOADS``   - comma-separated subset of workloads to sweep.
* ``REPRO_CACHE_DIR``   - cache location (default ``.repro_cache`` in cwd).
* ``REPRO_NO_CACHE=1``  - disable the persistent cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.endurance.wear import BankWearRecord
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult
from repro.sim.system import run_simulation
from repro.workloads.profiles import WORKLOAD_NAMES

_SCALAR_FIELDS = [
    "workload", "policy", "slow_factor", "num_banks", "expo_factor",
    "window_ns", "instructions", "accesses", "ipc", "lifetime_years",
    "bank_utilization", "drain_fraction", "avg_read_latency_ns",
    "llc_misses", "llc_hits", "mpki", "writebacks", "eager_writebacks",
    "wasted_eager", "reads_issued", "read_row_hits", "read_row_misses",
    "writes_issued_normal", "writes_issued_slow", "eager_issued",
    "cancellations", "pauses", "drain_events", "read_energy_pj",
    "write_energy_pj", "avg_read_queue_depth", "avg_write_queue_depth",
    "blocks_per_bank", "leveling_efficiency",
]


def result_to_dict(result: RunResult) -> dict:
    data = {name: getattr(result, name) for name in _SCALAR_FIELDS}
    data["bank_utilizations"] = list(result.bank_utilizations)
    data["wear_records"] = [
        {
            "normal": record.normal_writes,
            "slow": {str(k): v for k, v in record.slow_writes_by_factor.items()},
        }
        for record in result.wear_records
    ]
    return data


def result_from_dict(data: dict) -> RunResult:
    bank_utilizations = data.pop("bank_utilizations", [])
    records = []
    for item in data.pop("wear_records"):
        record = BankWearRecord(normal_writes=item["normal"])
        record.slow_writes_by_factor = {
            float(k): v for k, v in item["slow"].items()
        }
        records.append(record)
    result = RunResult(**data)
    result.wear_records = records
    result.bank_utilizations = bank_utilizations
    return result


def scale_factor() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def selected_workloads(default: Optional[Sequence[str]] = None) -> List[str]:
    env = os.environ.get("REPRO_WORKLOADS")
    if env:
        names = [n.strip() for n in env.split(",") if n.strip()]
        unknown = set(names) - set(WORKLOAD_NAMES)
        if unknown:
            raise ValueError(f"unknown workloads in REPRO_WORKLOADS: {unknown}")
        return names
    return list(default if default is not None else WORKLOAD_NAMES)


class Runner:
    """Runs configs through the simulator with memo + disk caching."""

    def __init__(self, cache_dir: Optional[Path] = None) -> None:
        if cache_dir is None:
            cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
        self.cache_dir = cache_dir
        self.disk_cache = os.environ.get("REPRO_NO_CACHE", "0") != "1"
        self._memo: Dict[tuple, RunResult] = {}
        self.simulated = 0
        self.cache_hits = 0

    def _path_for(self, config: SimConfig) -> Path:
        key = repr(config.cache_key()).encode()
        digest = hashlib.sha256(key).hexdigest()[:24]
        return self.cache_dir / f"{digest}.json"

    def run(self, config: SimConfig) -> RunResult:
        key = config.cache_key()
        if key in self._memo:
            self.cache_hits += 1
            return self._memo[key]
        if self.disk_cache:
            path = self._path_for(config)
            if path.exists():
                try:
                    result = result_from_dict(json.loads(path.read_text()))
                    self._memo[key] = result
                    self.cache_hits += 1
                    return result
                except (json.JSONDecodeError, KeyError, TypeError):
                    path.unlink()   # stale/corrupt entry; re-simulate
        result = run_simulation(config)
        self.simulated += 1
        self._memo[key] = result
        if self.disk_cache:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._path_for(config).write_text(
                json.dumps(result_to_dict(result))
            )
        return result

    def scaled(self, config: SimConfig) -> RunResult:
        """Run with window lengths scaled by REPRO_SCALE."""
        factor = scale_factor()
        if factor != 1.0:
            config = config.scaled(factor)
        return self.run(config)

    def sweep(self, configs: Iterable[SimConfig]) -> List[RunResult]:
        return [self.scaled(c) for c in configs]


_default_runner: Optional[Runner] = None


def default_runner() -> Runner:
    global _default_runner
    if _default_runner is None:
        _default_runner = Runner()
    return _default_runner
