"""Monte Carlo lifetime-to-failure experiment (fault injection).

The headline lifetime numbers elsewhere in the suite are *analytic*:
total wear divided by write rate.  This experiment instead runs the
device to destruction.  With :class:`repro.faults.FaultConfig` attached,
every line's cells age against lognormal endurance draws; exhausted
cells become stuck-at faults that write-verify + SECDED ECC survive
until a line exceeds correction capacity and is retired into the spare
region, and the run ends gracefully when the spares are gone
(``RunResult.uncorrectable``).

Aging is compressed with ``wear_acceleration`` so runs reach
end-of-life inside a simulated window of microseconds; that rescales
every policy's clock identically, so the *ordering* and *ratios* of the
survival times are meaningful even though the absolute numbers are not
device lifetimes.  Slow writes still deposit ``factor**-expo`` of the
damage of a normal write, which is exactly the Mellow Writes trade:
Norm burns its cells fastest, BE-Mellow+SC spends idle bank time on
slow writes and measurably outlives it, and Slow+SC outlives both.

Each (policy, seed) pair is one independent Monte Carlo sample; the
whole grid goes through :meth:`Runner.sweep`, so samples run in
parallel and land in the result cache like any other simulation.
"""

from __future__ import annotations

import math
from dataclasses import replace
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.analysis.report import Table
from repro.experiments.runner import Runner, default_runner
from repro.faults import FaultConfig
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult

#: Policies compared in the survival figure: the fast baseline, the
#: paper's best adaptive mechanism, and the all-slow upper bound.
SURVIVAL_POLICIES: Tuple[str, ...] = ("Norm", "BE-Mellow+SC", "Slow+SC")

DEFAULT_WORKLOAD = "zeusmp"
DEFAULT_SEEDS = 20

#: Window-length factor for the Monte Carlo samples.  Short windows +
#: accelerated aging keep one sample in the hundreds of milliseconds of
#: host time while still reaching end-of-life for the fast policies.
DEFAULT_MC_SCALE = 0.02


def default_fault_config() -> FaultConfig:
    """The accelerated-aging fault model used by the survival figure.

    ``wear_acceleration`` of 5e6 maps the median cell endurance onto a
    handful of writes; 8 spare lines per bank keeps the retirement
    cascade short so the fast policies die inside the window.
    """
    return FaultConfig(
        wear_acceleration=5e6,
        spare_lines_per_bank=8,
        max_write_retries=1,
    )


def survival_configs(
    workload: str = DEFAULT_WORKLOAD,
    policies: Sequence[str] = SURVIVAL_POLICIES,
    seeds: int = DEFAULT_SEEDS,
    faults: Optional[FaultConfig] = None,
    scale: float = DEFAULT_MC_SCALE,
) -> List[SimConfig]:
    """The Monte Carlo grid, ordered policy-major then seed."""
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    fault_config = faults if faults is not None else default_fault_config()
    base = [
        SimConfig(workload=workload, policy=policy, seed=seed,
                  faults=fault_config)
        for policy in policies
        for seed in range(1, seeds + 1)
    ]
    if scale != 1.0:
        return [config.scaled(scale) for config in base]
    return base


def survival_time_ns(result: RunResult) -> float:
    """One sample's survival time, right-censored for survivors.

    Failed runs report the absolute simulated time of the uncorrectable
    error (warmup included - cells age from the first write).  Runs
    that outlive the window are censored at ``window_ns``, a *lower
    bound* on their survival (it excludes warmup), so every mean below
    understates the advantage of the surviving policies.
    """
    if result.uncorrectable:
        return result.time_to_uncorrectable_ns
    return result.window_ns


def survival_summary(
    runner: Optional[Runner] = None,
    workload: str = DEFAULT_WORKLOAD,
    policies: Sequence[str] = SURVIVAL_POLICIES,
    seeds: int = DEFAULT_SEEDS,
    faults: Optional[FaultConfig] = None,
    scale: float = DEFAULT_MC_SCALE,
    jobs: Optional[int] = None,
    progress: Optional[Callable[..., None]] = None,
) -> Table:
    """Per-policy survival aggregates over the Monte Carlo seeds."""
    runner = runner if runner is not None else default_runner()
    policies = tuple(policies)
    grid = survival_configs(workload, policies, seeds, faults, scale)
    flat = iter(runner.sweep(grid, jobs=jobs, progress=progress))
    by_policy = {
        policy: [next(flat) for _ in range(seeds)] for policy in policies
    }
    table = Table(
        title=f"Lifetime to failure under fault injection "
              f"({workload}, {seeds} seeds)",
        columns=["policy", "failed_runs", "mean_survival_ns",
                 "survival_vs_norm", "mean_first_failure_ns",
                 "mean_lines_retired", "mean_ecc_corrected",
                 "mean_verify_retries"],
    )
    norm_mean: Optional[float] = None
    for policy in policies:
        results = by_policy[policy]
        failed = sum(1 for r in results if r.uncorrectable)
        mean_survival = sum(survival_time_ns(r) for r in results) / seeds
        if policy == "Norm":
            norm_mean = mean_survival
        first = [r.time_to_first_failure_ns for r in results
                 if r.time_to_first_failure_ns >= 0.0]
        table.add_row(
            policy,
            f"{failed}/{seeds}",
            mean_survival,
            mean_survival / norm_mean if norm_mean else float("nan"),
            # -1.0 = no cell ever failed, the RunResult sentinel (inf
            # would leak non-standard JSON through --output).
            sum(first) / len(first) if first else -1.0,
            sum(r.lines_retired for r in results) / seeds,
            sum(r.ecc_corrected_writes for r in results) / seeds,
            sum(r.fault_write_retries for r in results) / seeds,
        )
    table.notes.append(
        "survivors are censored at window_ns, so mean_survival_ns "
        "understates the slow policies; times are accelerated-aging "
        "nanoseconds, meaningful as ratios only"
    )
    return table


# ---------------------------------------------------------------------------
# Sharded long-horizon studies: scatter seeds x time slices over the
# worker pool via checkpoints, then merge the right-censored records.
# ---------------------------------------------------------------------------

#: Time slices per Monte Carlo sample in the sharded study.  Each slice
#: is an independently schedulable unit of work: a 1000-seed study with
#: 4 slices spreads 4000 work items over the pool instead of 1000
#: process-pinned runs, so stragglers (slow policies survive longest)
#: stop serializing the tail of the study.
DEFAULT_SLICES = 4

#: figfaults seed count: enough Monte Carlo mass for smooth survival
#: curves with tight Greenwood confidence bands.
FIGFAULTS_SEEDS = 1000

#: Two-sided z for the default 95% confidence bands.
_Z_95 = 1.959963984540054


def sliced_survival_configs(
    workload: str = DEFAULT_WORKLOAD,
    policies: Sequence[str] = SURVIVAL_POLICIES,
    seeds: int = DEFAULT_SEEDS,
    faults: Optional[FaultConfig] = None,
    scale: float = DEFAULT_MC_SCALE,
    slices: int = DEFAULT_SLICES,
) -> List[SimConfig]:
    """The Monte Carlo grid with each run cut into ``slices`` segments.

    ``checkpoint_every`` sits outside the cache key, so these configs
    share cache entries with the unsliced :func:`survival_configs` grid
    bit-for-bit.
    """
    if slices < 1:
        raise ValueError(f"slices must be >= 1, got {slices}")
    grid = survival_configs(workload, policies, seeds, faults, scale)
    if slices == 1:
        return grid
    return [
        replace(config, checkpoint_every=max(
            1, -(-(config.warmup_accesses + config.measure_accesses)
                 // slices)))
        for config in grid
    ]


def survival_records(
    policies: Sequence[str],
    seeds: int,
    results: Sequence[RunResult],
) -> List[Dict[str, Any]]:
    """Merge per-run results into right-censored survival records.

    One record per (policy, seed) in policy-major order - the canonical
    merged form that serial and sharded studies must agree on
    byte-for-byte.  ``observed`` False marks a censored record: the run
    outlived its window, so ``time_ns`` is a lower bound.
    """
    if len(results) != len(policies) * seeds:
        raise ValueError(
            f"expected {len(policies) * seeds} results for "
            f"{len(policies)} policies x {seeds} seeds, got {len(results)}")
    flat = iter(results)
    return [
        {
            "policy": policy,
            "seed": seed,
            "time_ns": survival_time_ns(result),
            "observed": bool(result.uncorrectable),
        }
        for policy in policies
        for seed, result in zip(range(1, seeds + 1), flat)
    ]


def sharded_survival_study(
    runner: Optional[Runner] = None,
    workload: str = DEFAULT_WORKLOAD,
    policies: Sequence[str] = SURVIVAL_POLICIES,
    seeds: int = DEFAULT_SEEDS,
    faults: Optional[FaultConfig] = None,
    scale: float = DEFAULT_MC_SCALE,
    slices: int = DEFAULT_SLICES,
    jobs: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    progress: Optional[Callable[..., None]] = None,
) -> List[Dict[str, Any]]:
    """Run the Monte Carlo grid sharded across processes via checkpoints.

    Returns the merged right-censored survival records in canonical
    (policy-major, seed-ascending) order.  Because every slice chain is
    bit-identical to a straight-through run, these records are
    byte-for-byte those of a serial study over the same grid.
    """
    runner = runner if runner is not None else default_runner()
    policies = tuple(policies)
    grid = sliced_survival_configs(workload, policies, seeds, faults,
                                   scale, slices)
    results = runner.sweep_sliced(
        grid, jobs=jobs, progress=progress,
        checkpoint_dir=None if checkpoint_dir is None
        else Path(checkpoint_dir))
    return survival_records(policies, seeds, results)


def kaplan_meier(
    records: Sequence[Dict[str, Any]],
    z: float = _Z_95,
) -> List[Tuple[float, float, float, float]]:
    """Kaplan-Meier survival steps with Greenwood confidence bands.

    Input records need ``time_ns`` and ``observed`` keys (censored
    records count toward the at-risk set until their censoring time but
    contribute no step).  Returns ``(time_ns, survival, lo, hi)`` rows,
    one per distinct event time, bands clamped to [0, 1].
    """
    ordered = sorted(records, key=lambda r: (r["time_ns"],
                                             not r["observed"]))
    at_risk = len(ordered)
    survival = 1.0
    greenwood = 0.0   # running sum of d / (n * (n - d))
    curve: List[Tuple[float, float, float, float]] = []
    index = 0
    while index < len(ordered):
        time_ns = ordered[index]["time_ns"]
        events = 0
        removed = 0
        # Ties group at exactly equal recorded times; a tolerance would
        # merge distinct failure events into one Kaplan-Meier step.
        while (index < len(ordered)
               and ordered[index]["time_ns"] == time_ns):   # simlint: ignore[SIM004]
            events += int(ordered[index]["observed"])
            removed += 1
            index += 1
        if events and at_risk:
            survival *= 1.0 - events / at_risk
            if at_risk > events:
                greenwood += events / (at_risk * (at_risk - events))
            half_width = (z * survival * math.sqrt(greenwood)
                          if survival > 0.0 else 0.0)
            curve.append((
                time_ns, survival,
                max(0.0, survival - half_width),
                min(1.0, survival + half_width),
            ))
        at_risk -= removed
    return curve


def km_median_survival_ns(
        curve: Sequence[Tuple[float, float, float, float]]) -> float:
    """First event time where S(t) drops to 0.5 or below; -1.0 when the
    curve never gets there (more than half the runs were censored)."""
    for time_ns, survival, _lo, _hi in curve:
        if survival <= 0.5:
            return time_ns
    return -1.0


def survival_curve_table(
    records: Sequence[Dict[str, Any]],
    policies: Sequence[str] = SURVIVAL_POLICIES,
    workload: str = DEFAULT_WORKLOAD,
) -> Table:
    """Per-policy Kaplan-Meier summary with 95% confidence bands."""
    by_policy: Dict[str, List[Dict[str, Any]]] = {p: [] for p in policies}
    for record in records:
        by_policy[record["policy"]].append(record)
    seeds = max((len(rows) for rows in by_policy.values()), default=0)
    table = Table(
        title=f"Kaplan-Meier survival under fault injection "
              f"({workload}, {seeds} seeds, 95% bands)",
        columns=["policy", "n", "failed", "censored", "median_survival_ns",
                 "mean_survival_ns", "km_s_end", "ci_low", "ci_high"],
    )
    for policy in policies:
        rows = by_policy[policy]
        curve = kaplan_meier(rows)
        failed = sum(1 for r in rows if r["observed"])
        mean = (sum(r["time_ns"] for r in rows) / len(rows)
                if rows else -1.0)
        if curve:
            _t, s_end, lo, hi = curve[-1]
        else:
            s_end, lo, hi = 1.0, 1.0, 1.0
        table.add_row(
            policy, len(rows), failed, len(rows) - failed,
            km_median_survival_ns(curve), mean, s_end, lo, hi,
        )
    table.notes.append(
        "km_s_end is the Kaplan-Meier survival estimate at the last "
        "observed failure, with Greenwood 95% bands; censored runs "
        "(survivors) bound the curve from below"
    )
    return table


def figfaults_survival(runner: Optional[Runner] = None,
                       workloads: Optional[Sequence[str]] = None) -> Table:
    """Figure-registry entry point (first workload only, if given).

    A 1000-seed sharded survival study: seeds x time slices scatter over
    the worker pool via checkpoints, and the merged records feed the
    Kaplan-Meier summary with confidence bands.  All 3000 samples land
    in the result cache, so regeneration is incremental.
    """
    workload = workloads[0] if workloads else DEFAULT_WORKLOAD
    records = sharded_survival_study(
        runner=runner, workload=workload, seeds=FIGFAULTS_SEEDS)
    return survival_curve_table(records, workload=workload)
