"""Monte Carlo lifetime-to-failure experiment (fault injection).

The headline lifetime numbers elsewhere in the suite are *analytic*:
total wear divided by write rate.  This experiment instead runs the
device to destruction.  With :class:`repro.faults.FaultConfig` attached,
every line's cells age against lognormal endurance draws; exhausted
cells become stuck-at faults that write-verify + SECDED ECC survive
until a line exceeds correction capacity and is retired into the spare
region, and the run ends gracefully when the spares are gone
(``RunResult.uncorrectable``).

Aging is compressed with ``wear_acceleration`` so runs reach
end-of-life inside a simulated window of microseconds; that rescales
every policy's clock identically, so the *ordering* and *ratios* of the
survival times are meaningful even though the absolute numbers are not
device lifetimes.  Slow writes still deposit ``factor**-expo`` of the
damage of a normal write, which is exactly the Mellow Writes trade:
Norm burns its cells fastest, BE-Mellow+SC spends idle bank time on
slow writes and measurably outlives it, and Slow+SC outlives both.

Each (policy, seed) pair is one independent Monte Carlo sample; the
whole grid goes through :meth:`Runner.sweep`, so samples run in
parallel and land in the result cache like any other simulation.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.report import Table
from repro.experiments.runner import Runner, default_runner
from repro.faults import FaultConfig
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult

#: Policies compared in the survival figure: the fast baseline, the
#: paper's best adaptive mechanism, and the all-slow upper bound.
SURVIVAL_POLICIES: Tuple[str, ...] = ("Norm", "BE-Mellow+SC", "Slow+SC")

DEFAULT_WORKLOAD = "zeusmp"
DEFAULT_SEEDS = 20

#: Window-length factor for the Monte Carlo samples.  Short windows +
#: accelerated aging keep one sample in the hundreds of milliseconds of
#: host time while still reaching end-of-life for the fast policies.
DEFAULT_MC_SCALE = 0.02


def default_fault_config() -> FaultConfig:
    """The accelerated-aging fault model used by the survival figure.

    ``wear_acceleration`` of 5e6 maps the median cell endurance onto a
    handful of writes; 8 spare lines per bank keeps the retirement
    cascade short so the fast policies die inside the window.
    """
    return FaultConfig(
        wear_acceleration=5e6,
        spare_lines_per_bank=8,
        max_write_retries=1,
    )


def survival_configs(
    workload: str = DEFAULT_WORKLOAD,
    policies: Sequence[str] = SURVIVAL_POLICIES,
    seeds: int = DEFAULT_SEEDS,
    faults: Optional[FaultConfig] = None,
    scale: float = DEFAULT_MC_SCALE,
) -> List[SimConfig]:
    """The Monte Carlo grid, ordered policy-major then seed."""
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    fault_config = faults if faults is not None else default_fault_config()
    base = [
        SimConfig(workload=workload, policy=policy, seed=seed,
                  faults=fault_config)
        for policy in policies
        for seed in range(1, seeds + 1)
    ]
    if scale != 1.0:
        return [config.scaled(scale) for config in base]
    return base


def survival_time_ns(result: RunResult) -> float:
    """One sample's survival time, right-censored for survivors.

    Failed runs report the absolute simulated time of the uncorrectable
    error (warmup included - cells age from the first write).  Runs
    that outlive the window are censored at ``window_ns``, a *lower
    bound* on their survival (it excludes warmup), so every mean below
    understates the advantage of the surviving policies.
    """
    if result.uncorrectable:
        return result.time_to_uncorrectable_ns
    return result.window_ns


def survival_summary(
    runner: Optional[Runner] = None,
    workload: str = DEFAULT_WORKLOAD,
    policies: Sequence[str] = SURVIVAL_POLICIES,
    seeds: int = DEFAULT_SEEDS,
    faults: Optional[FaultConfig] = None,
    scale: float = DEFAULT_MC_SCALE,
    jobs: Optional[int] = None,
    progress: Optional[Callable[..., None]] = None,
) -> Table:
    """Per-policy survival aggregates over the Monte Carlo seeds."""
    runner = runner if runner is not None else default_runner()
    policies = tuple(policies)
    grid = survival_configs(workload, policies, seeds, faults, scale)
    flat = iter(runner.sweep(grid, jobs=jobs, progress=progress))
    by_policy = {
        policy: [next(flat) for _ in range(seeds)] for policy in policies
    }
    table = Table(
        title=f"Lifetime to failure under fault injection "
              f"({workload}, {seeds} seeds)",
        columns=["policy", "failed_runs", "mean_survival_ns",
                 "survival_vs_norm", "mean_first_failure_ns",
                 "mean_lines_retired", "mean_ecc_corrected",
                 "mean_verify_retries"],
    )
    norm_mean: Optional[float] = None
    for policy in policies:
        results = by_policy[policy]
        failed = sum(1 for r in results if r.uncorrectable)
        mean_survival = sum(survival_time_ns(r) for r in results) / seeds
        if policy == "Norm":
            norm_mean = mean_survival
        first = [r.time_to_first_failure_ns for r in results
                 if r.time_to_first_failure_ns >= 0.0]
        table.add_row(
            policy,
            f"{failed}/{seeds}",
            mean_survival,
            mean_survival / norm_mean if norm_mean else float("nan"),
            # -1.0 = no cell ever failed, the RunResult sentinel (inf
            # would leak non-standard JSON through --output).
            sum(first) / len(first) if first else -1.0,
            sum(r.lines_retired for r in results) / seeds,
            sum(r.ecc_corrected_writes for r in results) / seeds,
            sum(r.fault_write_retries for r in results) / seeds,
        )
    table.notes.append(
        "survivors are censored at window_ns, so mean_survival_ns "
        "understates the slow policies; times are accelerated-aging "
        "nanoseconds, meaningful as ratios only"
    )
    return table


def figfaults_survival(runner: Optional[Runner] = None,
                       workloads: Optional[Sequence[str]] = None) -> Table:
    """Figure-registry entry point (first workload only, if given)."""
    workload = workloads[0] if workloads else DEFAULT_WORKLOAD
    return survival_summary(runner=runner, workload=workload)
