"""Side-by-side comparison of two configurations.

``compare_configs`` runs (or fetches) two configurations that differ in
any knob - policy, bank count, slow factor, extensions - and reports the
metric deltas in one table.  This is the workhorse behind
``python -m repro compare`` and a convenient programmatic entry point:

    >>> from repro.experiments.compare import compare_configs
    >>> from repro.sim.config import SimConfig
    >>> table = compare_configs(
    ...     SimConfig(workload="lbm", policy="Norm"),
    ...     SimConfig(workload="lbm", policy="BE-Mellow+SC+WQ"),
    ... )
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.lifetime import capped
from repro.analysis.report import Table
from repro.experiments.runner import Runner, default_runner
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult

# (label, attribute, higher_is_better)
_METRICS = (
    ("IPC", "ipc", True),
    ("lifetime (years)", "lifetime_years", True),
    ("bank utilization", "bank_utilization", None),
    ("write-drain fraction", "drain_fraction", False),
    ("avg read latency (ns)", "avg_read_latency_ns", False),
    ("LLC MPKI", "mpki", None),
    ("writebacks", "writebacks", None),
    ("eager writebacks", "eager_writebacks", None),
    ("normal writes issued", "writes_issued_normal", None),
    ("slow writes issued", "writes_issued_slow", None),
    ("cancellations", "cancellations", None),
    ("pauses", "pauses", None),
    ("memory energy (uJ)", "total_energy_pj", False),
)


def _value(result: RunResult, attribute: str) -> float:
    value = getattr(result, attribute)
    if attribute == "total_energy_pj":
        return value / 1e6
    if attribute == "lifetime_years":
        return capped(value)
    return value


def compare_configs(
    baseline: SimConfig,
    candidate: SimConfig,
    runner: Optional[Runner] = None,
    baseline_label: Optional[str] = None,
    candidate_label: Optional[str] = None,
) -> Table:
    """Run both configs and tabulate metric-by-metric ratios."""
    runner = runner if runner is not None else default_runner()
    base, cand = runner.sweep([baseline, candidate])
    baseline_label = baseline_label or f"{base.workload}/{base.policy}"
    candidate_label = candidate_label or f"{cand.workload}/{cand.policy}"
    table = Table(
        title=f"Comparison: {candidate_label} vs {baseline_label}",
        columns=["metric", baseline_label, candidate_label, "ratio",
                 "verdict"],
    )
    for label, attribute, higher_is_better in _METRICS:
        a = _value(base, attribute)
        b = _value(cand, attribute)
        ratio = b / a if a else float("inf") if b else 1.0
        if higher_is_better is None or abs(ratio - 1.0) < 0.02:
            verdict = ""
        elif (ratio > 1.0) == higher_is_better:
            verdict = "better"
        else:
            verdict = "worse"
        table.add_row(label, a, b, ratio, verdict)
    return table
