"""Seed-stability study: are the conclusions robust to trace randomness?

Synthetic workloads are stochastic, so any single-seed comparison could in
principle be a fluke of one trace realisation.  This study re-runs the
headline comparison (Norm vs BE-Mellow+SC) under several seeds and reports
per-seed ratios plus their spread.  The bench asserts the sign of every
conclusion is seed-independent and the coefficient of variation stays
small - the reproduction's equivalent of error bars.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analysis.lifetime import capped
from repro.analysis.report import Table
from repro.experiments.runner import Runner, default_runner
from repro.sim.config import SimConfig

DEFAULT_SEEDS = (1, 2, 3)
DEFAULT_WORKLOADS = ("GemsFDTD", "lbm", "milc", "hmmer")


def _stats(values: Sequence[float]):
    mean = sum(values) / len(values)
    if len(values) < 2 or mean == 0:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance) / mean


def seed_stability(runner: Optional[Runner] = None,
                   workloads: Sequence[str] = DEFAULT_WORKLOADS,
                   seeds: Sequence[int] = DEFAULT_SEEDS) -> Table:
    runner = runner if runner is not None else default_runner()
    table = Table(
        title="Seed stability: BE-Mellow+SC vs Norm across trace seeds",
        columns=["workload", "ipc_ratio_mean", "ipc_ratio_cv",
                 "lifetime_ratio_mean", "lifetime_ratio_cv", "seeds"],
    )
    runner.sweep([                      # parallel prefetch; loops hit memo
        SimConfig(workload=workload, policy=policy, seed=seed)
        for workload in workloads for seed in seeds
        for policy in ("Norm", "BE-Mellow+SC")
    ])
    for workload in workloads:
        ipc_ratios = []
        life_ratios = []
        for seed in seeds:
            base = runner.scaled(SimConfig(workload=workload, policy="Norm",
                                           seed=seed))
            mellow = runner.scaled(SimConfig(workload=workload,
                                             policy="BE-Mellow+SC",
                                             seed=seed))
            ipc_ratios.append(mellow.ipc / base.ipc)
            life_ratios.append(
                capped(mellow.lifetime_years) / capped(base.lifetime_years)
            )
        ipc_mean, ipc_cv = _stats(ipc_ratios)
        life_mean, life_cv = _stats(life_ratios)
        table.add_row(workload, ipc_mean, ipc_cv, life_mean, life_cv,
                      len(seeds))
    table.notes.append(
        "cv = stddev/mean across seeds; conclusions should hold at every "
        "seed (sign) with small cv (magnitude)"
    )
    return table
