"""The paper's headline numbers as one reproducible summary.

Abstract / Section VI-A: "our best Mellow Writes mechanism can achieve
2.58x lifetime and 1.06x performance of the baseline system", E-Slow+SC
has "geometric mean: 0.77x performance, worst 0.46x (lbm)", and Wear Quota
"guarantees a minimal lifetime (e.g., 8 years)".  This module computes the
same suite-level aggregates from the full 11-workload sweep.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import params
from repro.analysis.lifetime import capped, geomean
from repro.analysis.report import Table
from repro.core.policies import PAPER_POLICY_NAMES
from repro.experiments.runner import Runner, default_runner, selected_workloads
from repro.sim.config import SimConfig

# Published suite-level anchors (policy -> (ipc_vs_norm, lifetime_vs_norm));
# None where the paper gives no explicit number.
PAPER_HEADLINES = {
    "BE-Mellow+SC": (1.06, 2.58),
    "E-Slow+SC": (0.77, None),
}


def headline_summary(runner: Optional[Runner] = None,
                     workloads: Optional[Sequence[str]] = None) -> Table:
    """Geomean IPC and lifetime of every policy, normalised to Norm."""
    runner = runner if runner is not None else default_runner()
    workloads = selected_workloads(workloads)
    table = Table(
        title="Headline summary: geomean IPC / lifetime vs Norm "
              "(paper: BE-Mellow+SC = 1.06x / 2.58x)",
        columns=["policy", "ipc_vs_norm", "lifetime_vs_norm",
                 "min_lifetime_years", "paper_ipc", "paper_lifetime"],
    )
    grid = [
        SimConfig(workload=workload, policy=policy)
        for workload in workloads for policy in PAPER_POLICY_NAMES
    ]
    flat = iter(runner.sweep(grid))
    results = {
        workload: {policy: next(flat) for policy in PAPER_POLICY_NAMES}
        for workload in workloads
    }
    for policy in PAPER_POLICY_NAMES:
        ipc_ratios = []
        life_ratios = []
        min_life = float("inf")
        for workload in workloads:
            base = results[workload]["Norm"]
            mine = results[workload][policy]
            ipc_ratios.append(mine.ipc / base.ipc)
            life_ratios.append(
                capped(mine.lifetime_years) / capped(base.lifetime_years)
            )
            min_life = min(min_life, mine.lifetime_years)
        paper_ipc, paper_life = PAPER_HEADLINES.get(policy, (None, None))
        table.add_row(
            policy, geomean(ipc_ratios), geomean(life_ratios), min_life,
            paper_ipc if paper_ipc is not None else "-",
            paper_life if paper_life is not None else "-",
        )
    table.notes.append(
        "min_lifetime_years shows the Wear Quota floor: +WQ policies must "
        f"approach {params.TARGET_LIFETIME_YEARS:.0f} years on every "
        "workload (asymptotically exact; short windows truncate catch-up)"
    )
    return table
