"""Ablation studies on the design choices DESIGN.md calls out.

These go beyond the paper's published figures:

* eager-candidate selector: the paper's LRU-position profile vs the
  dead-block predictor it names as future work;
* Flip-N-Write composition: the orthogonal physical wear limiter stacked
  on Mellow Writes;
* multi-latency Mellow Writes (+ML): the Section VI-I extension;
* eager scan interval: how aggressively the LLC volunteers dirty lines;
* Wear Quota sample period: control granularity vs guarantee tightness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import Table
from repro.experiments.runner import Runner, default_runner
from repro.sim.config import SimConfig

ABLATION_WORKLOADS = ("GemsFDTD", "lbm", "milc")


def _runner(runner: Optional[Runner]) -> Runner:
    return runner if runner is not None else default_runner()


def _prefetch(runner: Runner, configs) -> None:
    """Simulate a study's whole grid in parallel; the table loops that
    follow re-request each config and hit the in-memory memo."""
    runner.sweep(configs)


def abl_eager_selector(runner: Optional[Runner] = None,
                       workloads: Sequence[str] = ABLATION_WORKLOADS) -> Table:
    runner = _runner(runner)
    table = Table(
        title="Ablation: eager candidate selector (stack profile vs "
              "dead-block prediction)",
        columns=["workload", "selector", "ipc", "lifetime_years",
                 "eager_writebacks", "wasted_eager", "waste_rate"],
    )
    _prefetch(runner, [
        SimConfig(workload=workload, policy="BE-Mellow+SC",
                  eager_selector=selector)
        for workload in workloads for selector in ("stack", "deadblock")
    ])
    for workload in workloads:
        for selector in ("stack", "deadblock"):
            result = runner.scaled(SimConfig(
                workload=workload, policy="BE-Mellow+SC",
                eager_selector=selector,
            ))
            waste = (result.wasted_eager / result.eager_writebacks
                     if result.eager_writebacks else 0.0)
            table.add_row(workload, selector, result.ipc,
                          result.lifetime_years, result.eager_writebacks,
                          result.wasted_eager, waste)
    table.notes.append(
        "decay-based dead-block prediction trades recall (far fewer eager "
        "writes) for precision (near-zero waste)"
    )
    return table


def abl_flip_n_write(runner: Optional[Runner] = None,
                     workloads: Sequence[str] = ABLATION_WORKLOADS) -> Table:
    runner = _runner(runner)
    table = Table(
        title="Ablation: Flip-N-Write composed with Mellow Writes",
        columns=["workload", "config", "ipc", "lifetime_years"],
    )
    _prefetch(runner, [
        SimConfig(workload=workload, policy=policy, flip_n_write=fnw)
        for workload in workloads
        for policy, fnw in (("Norm", False), ("Norm", True),
                            ("BE-Mellow+SC", False), ("BE-Mellow+SC", True))
    ])
    for workload in workloads:
        for policy, fnw in (("Norm", False), ("Norm", True),
                            ("BE-Mellow+SC", False), ("BE-Mellow+SC", True)):
            result = runner.scaled(SimConfig(
                workload=workload, policy=policy, flip_n_write=fnw,
            ))
            label = policy + ("+FNW" if fnw else "")
            table.add_row(workload, label, result.ipc, result.lifetime_years)
    table.notes.append(
        "Flip-N-Write reduces wear per write (~0.46x) with no timing cost; "
        "gains multiply with Mellow Writes because the techniques are "
        "orthogonal (Section VII)"
    )
    return table


def abl_multi_latency(runner: Optional[Runner] = None,
                      workloads: Sequence[str] = ("hmmer", "lbm", "stream"),
                      ) -> Table:
    runner = _runner(runner)
    table = Table(
        title="Ablation: multi-latency Mellow Writes (+ML, Section VI-I)",
        columns=["workload", "policy", "ipc", "lifetime_years",
                 "normal_writes", "slow_writes"],
    )
    _prefetch(runner, [
        SimConfig(workload=workload, policy=policy)
        for workload in workloads
        for policy in ("B-Mellow+SC", "B-Mellow+SC+ML", "BE-Mellow+SC+ML")
    ])
    for workload in workloads:
        for policy in ("B-Mellow+SC", "B-Mellow+SC+ML", "BE-Mellow+SC+ML"):
            result = runner.scaled(SimConfig(workload=workload, policy=policy))
            table.add_row(workload, policy, result.ipc,
                          result.lifetime_years, result.writes_issued_normal,
                          result.writes_issued_slow)
    table.notes.append(
        "the 1.5x middle tier targets the latency-sensitive workloads "
        "(hmmer, lbm, stream) where the paper says two speeds are too coarse"
    )
    return table


def abl_eager_scan_interval(runner: Optional[Runner] = None,
                            workload: str = "GemsFDTD") -> Table:
    runner = _runner(runner)
    table = Table(
        title=f"Ablation: eager scan interval ({workload})",
        columns=["scan_interval_ns", "ipc", "lifetime_years",
                 "eager_writebacks", "wasted_eager"],
    )
    _prefetch(runner, [
        SimConfig(workload=workload, policy="BE-Mellow+SC",
                  eager_scan_interval_ns=interval)
        for interval in (30.0, 60.0, 240.0, 960.0)
    ])
    for interval in (30.0, 60.0, 240.0, 960.0):
        result = runner.scaled(SimConfig(
            workload=workload, policy="BE-Mellow+SC",
            eager_scan_interval_ns=interval,
        ))
        table.add_row(interval, result.ipc, result.lifetime_years,
                      result.eager_writebacks, result.wasted_eager)
    table.notes.append(
        "slower scans shrink the eager-write supply and with it the "
        "lifetime benefit; the paper's 'any idle LLC cycle' is the "
        "aggressive end"
    )
    return table


def abl_quota_period(runner: Optional[Runner] = None,
                     workload: str = "lbm") -> Table:
    runner = _runner(runner)
    table = Table(
        title=f"Ablation: Wear Quota sample period ({workload})",
        columns=["period_ns", "ipc", "lifetime_years", "slow_writes"],
    )
    _prefetch(runner, [
        SimConfig(workload=workload, policy="BE-Mellow+SC+WQ",
                  sample_period_ns=period)
        for period in (100_000.0, 500_000.0, 2_000_000.0)
    ])
    for period in (100_000.0, 500_000.0, 2_000_000.0):
        result = runner.scaled(SimConfig(
            workload=workload, policy="BE-Mellow+SC+WQ",
            sample_period_ns=period,
        ))
        table.add_row(period, result.ipc, result.lifetime_years,
                      result.writes_issued_slow)
    table.notes.append(
        "shorter periods track the quota more tightly (lifetime closer to "
        "the target from below) at slightly higher control overhead"
    )
    return table


def abl_dram_buffer(runner: Optional[Runner] = None,
                    workloads: Sequence[str] = ("gups", "milc", "lbm"),
                    ) -> Table:
    runner = _runner(runner)
    table = Table(
        title="Ablation: DRAM write-coalescing buffer (Qureshi et al. '09 "
              "baseline) composed with Mellow Writes",
        columns=["workload", "config", "ipc", "lifetime_years",
                 "writes_to_memory"],
    )
    entries_options = (0, 65536)           # 0 vs a 4 MB coalescing buffer
    _prefetch(runner, [
        SimConfig(workload=workload, policy=policy,
                  dram_buffer_entries=entries)
        for workload in workloads
        for policy in ("Norm", "BE-Mellow+SC")
        for entries in entries_options
    ])
    for workload in workloads:
        for policy in ("Norm", "BE-Mellow+SC"):
            for entries in entries_options:
                result = runner.scaled(SimConfig(
                    workload=workload, policy=policy,
                    dram_buffer_entries=entries,
                ))
                label = policy + (f"+DRAM{entries}" if entries else "")
                table.add_row(workload, label, result.ipc,
                              result.lifetime_years,
                              result.writes_issued_total)
    table.notes.append(
        "coalescing removes re-writebacks where they exist (milc's 96 MB "
        "working set) and is nearly inert for uniform-random updates over "
        "512 MB (gups) and write-once streams (lbm) - buffer reach vs "
        "footprint decides, as in Qureshi et al.'s DRAM-buffered PCM"
    )
    return table


def abl_write_pausing(runner: Optional[Runner] = None,
                      workloads: Sequence[str] = ("GemsFDTD", "milc", "mcf"),
                      ) -> Table:
    runner = _runner(runner)
    table = Table(
        title="Ablation: write cancellation vs write pausing (+WP)",
        columns=["workload", "policy", "ipc", "lifetime_years",
                 "cancellations", "pauses"],
    )
    _prefetch(runner, [
        SimConfig(workload=workload, policy=policy)
        for workload in workloads
        for policy in ("Slow+SC", "Slow+SC+WP", "BE-Mellow+SC",
                       "BE-Mellow+SC+WP")
    ])
    for workload in workloads:
        for policy in ("Slow+SC", "Slow+SC+WP", "BE-Mellow+SC",
                       "BE-Mellow+SC+WP"):
            result = runner.scaled(SimConfig(workload=workload, policy=policy))
            table.add_row(workload, policy, result.ipc,
                          result.lifetime_years, result.cancellations,
                          result.pauses)
    table.notes.append(
        "pausing retains pulse progress, so interrupted writes stop "
        "re-paying wear and latency; lifetimes rise at equal or better IPC"
    )
    return table


ALL_ABLATIONS = {
    "abl_eager_selector": abl_eager_selector,
    "abl_flip_n_write": abl_flip_n_write,
    "abl_multi_latency": abl_multi_latency,
    "abl_eager_scan_interval": abl_eager_scan_interval,
    "abl_quota_period": abl_quota_period,
    "abl_dram_buffer": abl_dram_buffer,
    "abl_write_pausing": abl_write_pausing,
}
