# Developer entry points.  `make check` is the full local gauntlet;
# `repro check` skips tools that are not installed (ruff, mypy) with a
# notice so the target works in minimal environments - CI passes
# --require-tools and installs them all.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint simlint typecheck test sanitize coverage \
	bench-sanitizer trace-demo bench-telemetry bench-hotpath \
	bench-hotpath-miss

check:
	$(PYTHON) -m repro check
	$(PYTHON) -m pytest -x -q
	@echo "check: all gates passed"

lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; \
	then ruff check .; \
	else echo "lint: ruff not installed, skipping (CI runs it)"; fi

# Incremental by default (.simlint_cache); `repro lint --no-cache` for a
# cold run.
simlint:
	$(PYTHON) -m repro lint --stats src tests benchmarks examples

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; \
	then $(PYTHON) -m mypy; \
	else echo "typecheck: mypy not installed, skipping (CI runs it)"; fi

test:
	$(PYTHON) -m pytest -x -q

# Run the tier-1 suite with the runtime sanitizer armed everywhere.
sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

# Statement coverage with the same floor CI enforces (the floor lives
# here so local runs and the CI coverage job can never disagree).
COV_FLOOR ?= 90
coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; \
	then $(PYTHON) -m pytest -q --cov=repro --cov-report=term-missing \
		--cov-report=json --cov-fail-under=$(COV_FLOOR); \
	else echo "coverage: pytest-cov not installed, skipping (CI runs it)"; fi

# Sanitizer overhead + bit-identity report.
bench-sanitizer:
	$(PYTHON) -m repro lint --bench

# Trace one run end to end and leave a Perfetto-openable bundle behind.
trace-demo:
	REPRO_SCALE=0.2 $(PYTHON) examples/trace_a_run.py lbm trace_demo_bundle
	@echo "trace-demo: open trace_demo_bundle/trace.chrome.json at https://ui.perfetto.dev"

# Telemetry overhead + bit-identity gate (same check CI runs).
bench-telemetry:
	$(PYTHON) benchmarks/check_telemetry_overhead.py

# Hot-path speedup + bit-identity gate (same check CI's perf job runs);
# leaves BENCH_hotpath.json behind.
bench-hotpath:
	$(PYTHON) benchmarks/check_hotpath_speedup.py

# Miss-heavy rows only (gups/lbm/stream); faster iteration loop when
# working on the controller/event-queue path.  Writes a separate report
# so it never clobbers the committed full-matrix BENCH_hotpath.json.
bench-hotpath-miss:
	$(PYTHON) benchmarks/check_hotpath_speedup.py --configs miss \
		--output BENCH_hotpath_miss.json
