# Developer entry points.  `make check` is the full local gauntlet; tools
# that are not installed (ruff, mypy) are skipped with a notice so the
# target works in minimal environments - CI installs them all.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check lint simlint typecheck test sanitize bench-sanitizer

check: lint simlint typecheck test
	@echo "check: all gates passed"

lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; \
	then ruff check .; \
	else echo "lint: ruff not installed, skipping (CI runs it)"; fi

simlint:
	$(PYTHON) -m repro lint src tests benchmarks

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; \
	then $(PYTHON) -m mypy; \
	else echo "typecheck: mypy not installed, skipping (CI runs it)"; fi

test:
	$(PYTHON) -m pytest -x -q

# Run the tier-1 suite with the runtime sanitizer armed everywhere.
sanitize:
	REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q

# Sanitizer overhead + bit-identity report.
bench-sanitizer:
	$(PYTHON) -m repro lint --bench
