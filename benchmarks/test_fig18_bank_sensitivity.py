"""Figure 18: GemsFDTD sensitivity to bank-level parallelism.

Paper shapes: with fewer banks (a) the lifetime gap between Norm and
BE-Mellow+SC shrinks, (b) per-bank utilization rises, (c) eager writes
collapse, (d) more writes issue at normal speed.
"""

from repro.experiments.figures import fig18_bank_sensitivity


def test_fig18_bank_sensitivity(benchmark, save_table):
    table = benchmark.pedantic(fig18_bank_sensitivity, rounds=1, iterations=1)
    save_table("fig18_bank_sensitivity", table)

    by_key = {(r[0], r[1]): r for r in table.rows}

    def gain(banks):
        norm = by_key[(banks, "Norm")][2]
        mellow = by_key[(banks, "BE-Mellow+SC")][2]
        return mellow / norm

    # (a) Mellow Writes' lifetime advantage shrinks as banks shrink.
    assert gain(16) > gain(4)

    # (b) fewer banks -> higher utilization (Norm column).
    assert by_key[(4, "Norm")][3] > by_key[(16, "Norm")][3]

    # (c) eager writes collapse with fewer banks.
    eager16 = by_key[(16, "BE-Mellow+SC")][4]
    eager4 = by_key[(4, "BE-Mellow+SC")][4]
    assert eager4 < eager16

    # (d) normal-speed issues rise as bank-level parallelism disappears
    # (compare shares, since absolute counts shift with throughput).
    def normal_share(banks):
        row = by_key[(banks, "BE-Mellow+SC")]
        return row[5] / max(1, row[5] + row[6])
    assert normal_share(4) >= normal_share(16)
