"""Measure telemetry overhead: disabled must be free, enabled must be cheap.

Runs the same config three ways - the untraced baseline, untraced again
(to bound timing noise), and traced writing a full bundle - verifies the
results are bit-identical, and reports the wall-clock ratios.  The three
variants are interleaved round-robin and each round scored as a ratio
against its own baseline run; the minimum per-round ratio is reported,
so machine noise (which is round-correlated and strictly additive)
does not masquerade as overhead.  Asserts:

* disabled-path overhead < ``REPRO_TELEMETRY_DISABLED_MAX`` (default 2%,
  measured as the off/off ratio - the noise floor bounds the cost of the
  one-attribute-check-per-site disabled path from above);
* enabled-path overhead < ``REPRO_TELEMETRY_ENABLED_MAX`` (default 25%),
  including writing the bundle to disk.

    PYTHONPATH=src python benchmarks/check_telemetry_overhead.py
"""
from __future__ import annotations

import os
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.sim.config import SimConfig
from repro.sim.system import run_simulation

CONFIG = SimConfig(workload="lbm", policy="BE-Mellow+SC+WQ",
                   warmup_accesses=24_000, measure_accesses=96_000)
REPEATS = 3


def timed_run(config: SimConfig):
    start = time.perf_counter()   # simlint: ignore[SIM003] -- measuring host runtime is the point
    result = run_simulation(config)
    return (time.perf_counter() - start, result)   # simlint: ignore[SIM003] -- measuring host runtime is the point


def main() -> int:
    disabled_max = float(
        os.environ.get("REPRO_TELEMETRY_DISABLED_MAX", "0.02"))
    enabled_max = float(
        os.environ.get("REPRO_TELEMETRY_ENABLED_MAX", "0.25"))

    with tempfile.TemporaryDirectory() as tmp:
        variants = {
            "base": CONFIG,
            "off": CONFIG,
            "on": replace(CONFIG, telemetry=True,
                          telemetry_dir=str(Path(tmp) / "bundle")),
        }
        times = {key: [] for key in variants}
        results = {}
        for _ in range(REPEATS):
            for key, config in variants.items():
                elapsed, results[key] = timed_run(config)
                times[key].append(elapsed)

    if not (results["base"] == results["off"] == results["on"]):
        print("FAIL: traced/untraced results differ", file=sys.stderr)
        return 1

    disabled_overhead = min(
        off / base for off, base in zip(times["off"], times["base"])) - 1.0
    enabled_overhead = min(
        on / base for on, base in zip(times["on"], times["base"])) - 1.0
    base_s = min(times["base"])
    print(f"baseline {base_s:.2f}s | telemetry-off {disabled_overhead:+.1%} "
          f"| telemetry-on {enabled_overhead:+.1%}  "
          f"[min ratio over {REPEATS} rounds]")

    # The off/off comparison measures the same code path twice, so it
    # reports the noise floor; the disabled-path instrumentation cost is
    # below whatever this says.  A persistent excess means a guard is
    # doing real work while disabled.
    if disabled_overhead > disabled_max:
        print(f"FAIL: disabled-path overhead {disabled_overhead:+.1%} "
              f"exceeds {disabled_max:.0%}", file=sys.stderr)
        return 1
    if enabled_overhead > enabled_max:
        print(f"FAIL: enabled-path overhead {enabled_overhead:+.1%} "
              f"exceeds {enabled_max:.0%}", file=sys.stderr)
        return 1
    print(f"OK: disabled within {disabled_max:.0%}, "
          f"enabled within {enabled_max:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
