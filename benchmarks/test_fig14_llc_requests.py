"""Figure 14: memory requests sent from the LLC.

Paper shapes: eager-enabled policies convert a large share of demand
writebacks into eager writebacks, and the mis-prediction overhead (extra
total writes) stays small (<= a few percent).
"""

from repro.experiments.figures import fig14_llc_requests


def test_fig14_llc_requests(benchmark, save_table):
    table = benchmark.pedantic(fig14_llc_requests, rounds=1, iterations=1)
    save_table("fig14_llc_requests", table)

    for workload, policy, reads, writebacks, eager, total in table.rows:
        if workload == "GEOMEAN":
            continue
        if policy in ("Norm", "Slow+SC", "Norm+WQ", "B-Mellow+SC",
                      "B-Mellow+SC+WQ"):
            assert eager == 0.0, (workload, policy)
        # Total LLC-side traffic should stay near Norm's: eager writes
        # replace demand writebacks rather than adding to them.
        assert total < 1.35, (workload, policy, total)

    eager_share = [
        (r[0], r[4]) for r in table.rows
        if r[1] == "BE-Mellow+SC" and r[0] != "GEOMEAN"
    ]
    # At least some workloads hand a visible share of writes to the eager
    # path (the paper reports ~half of all writes on average).
    assert max(share for _, share in eager_share) > 0.05
