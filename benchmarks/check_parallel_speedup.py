"""Measure the parallel sweep engine's speedup on an 8-run grid.

Runs the same workload x policy grid twice from cold caches - once with
one worker, once with REPRO_JOBS (or all cores) - verifies the results are
identical, and reports the wall-clock ratio.  On a machine with >= 4 cores
the ratio is asserted to clear ``REPRO_SPEEDUP_MIN`` (default 2.0); on
smaller machines the script only reports, since there is no parallelism
to win.

    PYTHONPATH=src python benchmarks/check_parallel_speedup.py
"""
from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import Runner, default_jobs, result_to_dict
from repro.sim.config import SimConfig

# An 8-run grid at ~0.4x windows: heavy enough that pool startup is noise,
# light enough for CI (~1 min serial).
GRID = [
    SimConfig(workload=workload, policy=policy,
              warmup_accesses=12_000, measure_accesses=48_000)
    for workload in ("hmmer", "lbm")
    for policy in ("Norm", "Slow+SC", "B-Mellow+SC", "BE-Mellow+SC")
]


def timed_sweep(jobs: int, cache_dir: Path):
    start = time.perf_counter()   # simlint: ignore[SIM003] -- measuring host runtime is the point
    results = Runner(cache_dir=cache_dir).sweep(GRID, jobs=jobs)
    return (time.perf_counter() - start,   # simlint: ignore[SIM003] -- measuring host runtime is the point
            [result_to_dict(r) for r in results])


def main() -> int:
    jobs = max(2, default_jobs())
    minimum = float(os.environ.get("REPRO_SPEEDUP_MIN", "2.0"))
    with tempfile.TemporaryDirectory() as tmp:
        serial_s, serial = timed_sweep(1, Path(tmp) / "serial")
        parallel_s, parallel = timed_sweep(jobs, Path(tmp) / "parallel")
    if serial != parallel:
        print("FAIL: parallel results differ from serial", file=sys.stderr)
        return 1
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(f"grid: {len(GRID)} runs | serial {serial_s:.1f}s | "
          f"parallel({jobs} jobs) {parallel_s:.1f}s | speedup {speedup:.2f}x")
    cores = os.cpu_count() or 1
    if cores < 4:
        print(f"only {cores} cores: speedup is informational")
        return 0
    if speedup < minimum:
        print(f"FAIL: speedup {speedup:.2f}x < required {minimum:.1f}x",
              file=sys.stderr)
        return 1
    print(f"OK: speedup clears {minimum:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
