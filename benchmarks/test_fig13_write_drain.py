"""Figure 13: fraction of execution time spent in write drains.

Paper shapes: globally slow writes (E-Slow+SC) drain the most;
Bank-Aware Mellow Writes does not increase drains over Norm; Wear Quota
configurations drain more than their quota-less counterparts but less
than all-slow.
"""

from repro.experiments.figures import fig13_write_drain


def gm_column(table):
    return {r[1]: r[2] for r in table.rows if r[0] == "GEOMEAN"}


def test_fig13_write_drain(benchmark, save_table):
    table = benchmark.pedantic(fig13_write_drain, rounds=1, iterations=1)
    save_table("fig13_write_drain", table)

    per_workload = {}
    for workload, policy, drain in table.rows:
        if workload == "GEOMEAN":
            continue
        per_workload.setdefault(workload, {})[policy] = drain

    for workload, drains in per_workload.items():
        # B-Mellow only slows writes on otherwise-idle banks: it must not
        # meaningfully increase drain pressure over Norm.
        assert drains["B-Mellow+SC"] <= drains["Norm"] + 0.08, workload
        # All-slow writes drain at least as much as the baseline.
        assert drains["E-Slow+SC"] >= drains["Norm"] - 0.05, workload
        assert all(0.0 <= d <= 1.0 for d in drains.values())
