"""Figure 1: the analytic write-latency/endurance trade-off curves."""

from repro.experiments.figures import fig01_endurance_model


def test_fig01_endurance_model(benchmark, save_table):
    table = benchmark.pedantic(fig01_endurance_model, rounds=1, iterations=1)
    save_table("fig01_endurance_model", table)

    # Anchors: 150 ns -> 5e6 under every exponent; Table II ladder at 2.0.
    first = table.rows[0]
    assert first[0] == 150.0
    assert all(abs(v - 5e6) < 1 for v in first[2:])
    expo2 = table.column("expo_2.0")
    factors = table.column("slow_factor")
    row_3x = factors.index(3.0)
    assert abs(expo2[row_3x] - 4.5e7) < 1e3
