"""Error bars for the reproduction: the headline holds across trace seeds."""

from repro.experiments.seeds import seed_stability


def test_seed_stability(benchmark, save_table):
    table = benchmark.pedantic(seed_stability, rounds=1, iterations=1)
    save_table("seed_stability", table)

    for workload, ipc_mean, ipc_cv, life_mean, life_cv, _ in table.rows:
        # BE-Mellow+SC never collapses performance, at any seed.
        assert ipc_mean > 0.85, (workload, ipc_mean)
        # Lifetime direction: within noise of >= Norm everywhere, and
        # clearly above on the suite at large.
        assert life_mean > 0.75, (workload, life_mean)
        # Trace randomness does not dominate the measurement.
        assert ipc_cv < 0.15, (workload, ipc_cv)
        assert life_cv < 0.60, (workload, life_cv)

    lifetime_means = [r[3] for r in table.rows]
    assert max(lifetime_means) > 1.5   # the gain is real on heavy workloads
