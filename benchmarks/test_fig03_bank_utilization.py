"""Figure 3: average bank utilization under normal writes (motivation).

Paper shape: for most workloads the banks are idle much of the time -
the headroom Mellow Writes exploits.
"""

from repro.experiments.figures import fig03_bank_utilization


def test_fig03_bank_utilization(benchmark, save_table):
    table = benchmark.pedantic(fig03_bank_utilization, rounds=1, iterations=1)
    save_table("fig03_bank_utilization", table)

    utils = dict(zip(table.column("workload"), table.column("bank_utilization")))
    assert all(0.0 <= u <= 1.0 for u in utils.values())
    # The cache-friendly workload leaves banks mostly idle...
    if "hmmer" in utils:
        assert utils["hmmer"] < 0.4
    # ...while at least some memory-bound workload keeps them busy.
    assert max(utils.values()) > 0.5
