"""Tables V/VI: per-operation energy of the memristive main memory."""

from repro.experiments.figures import tab06_energy_per_op

# The published Table VI rows.
PAPER = {
    "CellA": (248.8, 314.5, 1.26),
    "CellB": (300.0, 432.3, 1.44),
    "CellC": (402.4, 667.8, 1.66),
    "CellD": (607.2, 1138.8, 1.88),
    "CellE": (1016.8, 2080.9, 2.05),
}


def test_tab06_energy_per_op(benchmark, save_table):
    table = benchmark.pedantic(tab06_energy_per_op, rounds=1, iterations=1)
    save_table("tab06_energy_per_op", table)

    for cell, buffer_read, norm, slow, ratio in table.rows:
        p_norm, p_slow, p_ratio = PAPER[cell]
        assert buffer_read == 1503.0
        assert abs(norm - p_norm) / p_norm < 0.01
        assert abs(slow - p_slow) / p_slow < 0.01
        assert abs(ratio - p_ratio) < 0.01
