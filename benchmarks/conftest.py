"""Benchmark-harness defaults.

The full-fidelity windows (REPRO_SCALE=1.0) take ~25 min across all
figures; the default bench scale of 0.4 keeps the whole harness under
~10 min while preserving every qualitative shape.  Set REPRO_SCALE=1.0 to
regenerate the numbers recorded in EXPERIMENTS.md.

Simulation results are cached on disk (``.repro_cache``), so figures that
share runs (10-16) simulate each configuration once.

Benches opt into parallel sweeps: cache misses fan out over REPRO_JOBS
worker processes (all cores unless the environment says otherwise).
Results are bit-identical to serial runs, so the cache stays valid either
way.
"""

import os
from pathlib import Path

import pytest

os.environ.setdefault("REPRO_SCALE", "0.4")
os.environ.setdefault("REPRO_JOBS", str(os.cpu_count() or 1))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """Write a rendered table to benchmarks/results/<name>.txt and echo it."""
    from repro.analysis.report import render

    def _save(name, table):
        text = render(table)
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return text

    return _save
