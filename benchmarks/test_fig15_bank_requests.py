"""Figure 15: requests issued to the memory banks.

Paper shape: cancellation re-issues make +SC/+NC configurations issue
substantially more bank-level requests than Norm; the increase traces to
write cancellation rather than eager writebacks.
"""

from repro.experiments.figures import fig15_bank_requests


def test_fig15_bank_requests(benchmark, save_table):
    table = benchmark.pedantic(fig15_bank_requests, rounds=1, iterations=1)
    save_table("fig15_bank_requests", table)

    per = {}
    for workload, policy, reads, writes, cancelled, total in table.rows:
        if workload == "GEOMEAN":
            continue
        per.setdefault(workload, {})[policy] = (reads, writes, cancelled, total)

    for workload, policies in per.items():
        norm_total = policies["Norm"][3]
        # Norm never cancels.
        assert policies["Norm"][2] == 0.0
        # Policies with cancellation issue at least as many requests.
        assert policies["BE-Mellow+SC"][3] >= norm_total * 0.85, workload
