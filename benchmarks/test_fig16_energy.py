"""Figure 16: main-memory energy (CellC), normalized to Norm.

Paper shape: Mellow Writes costs extra memory energy (slow writes take
2.3x cell energy; cancellations and eager writebacks add attempts), but
the increase stays moderate - the paper reports ~0.39x extra for
BE-Mellow+SC+WQ on average.
"""

from repro.experiments.figures import fig16_energy


def test_fig16_energy(benchmark, save_table):
    table = benchmark.pedantic(fig16_energy, rounds=1, iterations=1)
    save_table("fig16_energy", table)

    gm = {r[1]: r for r in table.rows if r[0] == "GEOMEAN"}
    norm_total = gm["Norm"][4]
    assert abs(norm_total - 1.0) < 1e-6
    mellow_total = gm["BE-Mellow+SC+WQ"][4]
    # More than Norm, but bounded (paper: ~1.39x).
    assert 1.0 <= mellow_total < 2.5
    # All-slow spends the most write energy of the non-eager policies.
    assert gm["Slow+SC"][3] >= gm["Norm"][3]
