"""Hot-path speedup gate: fast mode must beat the reference path.

Runs a matrix of configs twice each - with the hot path engaged (the
default) and with ``REPRO_NO_FASTPATH=1`` selecting the readable
reference implementations - and verifies both properties the hot path
promises:

* **Bit-identity**: every config's :class:`RunResult` must compare equal
  between the two modes.  The reference path is the oracle; a divergence
  is a correctness bug regardless of speed.
* **Speedup**: on the *gated* configs (hit-heavy workloads, where the
  LLC-hit fast path and the analytic core clock dominate) the wall-clock
  ratio reference/fast must reach ``REPRO_HOTPATH_MIN_RATIO`` (default
  2.0).  Miss-heavy configs are measured and reported but not gated -
  their runtime is controller/event-loop bound, and the slimming there
  is worth ~1.2-1.6x, not 2x.

Methodology: the two modes are interleaved round-robin (mode A, mode B,
mode A, ...) so slow machine phases hit both sides; each side is scored
by its **best** round, since timing noise is strictly additive, and the
ratio of the two minima is the most robust estimate of the true ratio.

Writes a machine-readable report to ``BENCH_hotpath.json`` (override
with ``--output``).  Exit status 0 iff every gated config passes and
every config is bit-identical.

    PYTHONPATH=src python benchmarks/check_hotpath_speedup.py
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Tuple

from repro.hotpath import FASTPATH_ENV
from repro.sim.config import SimConfig
from repro.sim.system import RunResult, run_simulation

ROUNDS = 3

# (workload, policy, scale, gated).  The gate matrix is hit-heavy hmmer
# across two policies; the rest document where the event-loop floor is.
MATRIX: List[Tuple[str, str, float, bool]] = [
    ("hmmer", "Norm", 0.2, True),
    ("hmmer", "BE-Mellow+SC", 0.2, True),
    ("gups", "Norm", 0.2, False),
    ("lbm", "Norm", 0.1, False),
    ("stream", "Norm", 0.2, False),
]


def timed_run(config: SimConfig, fastpath: bool) -> Tuple[float, RunResult]:
    """One simulation with the hot path toggled via the env switch."""
    if fastpath:
        os.environ.pop(FASTPATH_ENV, None)
    else:
        os.environ[FASTPATH_ENV] = "1"
    try:
        start = time.perf_counter()   # simlint: ignore[SIM003] -- measuring host runtime is the point
        result = run_simulation(config)
        return (time.perf_counter() - start, result)   # simlint: ignore[SIM003] -- measuring host runtime is the point
    finally:
        os.environ.pop(FASTPATH_ENV, None)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_hotpath.json",
                        help="where to write the JSON report")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="interleaved timing rounds per config")
    args = parser.parse_args()
    min_ratio = float(os.environ.get("REPRO_HOTPATH_MIN_RATIO", "2.0"))

    rows: List[Dict[str, object]] = []
    failed = False
    for workload, policy, scale, gated in MATRIX:
        config = SimConfig(workload=workload, policy=policy,
                           seed=3).scaled(scale)
        best = {"fast": float("inf"), "ref": float("inf")}
        results: Dict[str, RunResult] = {}
        for _ in range(args.rounds):
            for mode, fastpath in (("fast", True), ("ref", False)):
                elapsed, results[mode] = timed_run(config, fastpath)
                best[mode] = min(best[mode], elapsed)
        identical = results["fast"] == results["ref"]
        ratio = best["ref"] / best["fast"]
        ok = identical and (not gated or ratio >= min_ratio)
        failed = failed or not ok
        rows.append({
            "workload": workload, "policy": policy, "scale": scale,
            "fast_s": round(best["fast"], 4), "ref_s": round(best["ref"], 4),
            "ratio": round(ratio, 3), "gated": gated,
            "identical": identical, "pass": ok,
        })
        gate = f"gate>={min_ratio:.1f}" if gated else "report-only"
        verdict = "ok" if ok else ("DIVERGED" if not identical else "TOO SLOW")
        print(f"{workload:8s} {policy:14s} fast={best['fast']:.2f}s "
              f"ref={best['ref']:.2f}s ratio={ratio:.2f} [{gate}] {verdict}")

    report = {
        "min_ratio": min_ratio,
        "rounds": args.rounds,
        "configs": rows,
        "pass": not failed,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"report written to {args.output}")

    if failed:
        print("FAIL: hot-path gate violated (see rows above)",
              file=sys.stderr)
        return 1
    print(f"OK: all gated configs >= {min_ratio:.1f}x and every config "
          "bit-identical to the reference path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
