"""Hot-path speedup gate: fast mode must beat the reference path.

Runs a matrix of configs twice each - with the hot path engaged (the
default) and with ``REPRO_NO_FASTPATH=1`` selecting the readable
reference implementations - and verifies both properties the hot path
promises:

* **Bit-identity**: every config's :class:`RunResult` must compare equal
  between the two modes.  The reference path is the oracle; a divergence
  is a correctness bug regardless of speed.
* **Speedup**, gated per class:

  - *hit-heavy* configs (hmmer: LLC-hit fast path and the analytic core
    clock dominate) must each reach ``REPRO_HOTPATH_MIN_RATIO``
    (default 2.0);
  - *miss-heavy* configs (gups/lbm/stream: controller, event loop and
    warmup dominate) are gated as a group - **at least one** must reach
    ``REPRO_HOTPATH_MIN_RATIO_MISS`` (default 2.0).  The any-of rule
    reflects what the batched event-queue advancement, array bank state
    and epoch wear buffering actually buy: the workloads sit at
    different distances from the event-loop floor, and the gate pins
    the best case without making the slowest workload's noise fail CI.

Methodology: the two modes are interleaved round-robin (mode A, mode B,
mode A, ...) so slow machine phases hit both sides; each side is scored
by its **best** round, since timing noise is strictly additive, and the
ratio of the two minima is the most robust estimate of the true ratio.

Writes a machine-readable report to ``BENCH_hotpath.json`` (override
with ``--output``).  Exit status 0 iff every gated config passes and
every config is bit-identical.

    PYTHONPATH=src python benchmarks/check_hotpath_speedup.py
    PYTHONPATH=src python benchmarks/check_hotpath_speedup.py --configs miss
"""
from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Tuple

from repro.hotpath import FASTPATH_ENV
from repro.sim.config import SimConfig
from repro.sim.system import RunResult, run_simulation

ROUNDS = 3

HIT = "hit"
MISS = "miss"

# (workload, policy, scale, gate class).  Hit-heavy rows gate
# individually; miss-heavy rows gate as an any-of group (see module doc).
MATRIX: List[Tuple[str, str, float, str]] = [
    ("hmmer", "Norm", 0.2, HIT),
    ("hmmer", "BE-Mellow+SC", 0.2, HIT),
    ("gups", "Norm", 0.2, MISS),
    ("lbm", "Norm", 0.1, MISS),
    ("stream", "Norm", 0.2, MISS),
]


def timed_run(config: SimConfig, fastpath: bool) -> Tuple[float, RunResult]:
    """One simulation with the hot path toggled via the env switch."""
    if fastpath:
        os.environ.pop(FASTPATH_ENV, None)
    else:
        os.environ[FASTPATH_ENV] = "1"
    try:
        start = time.perf_counter()   # simlint: ignore[SIM003] -- measuring host runtime is the point
        result = run_simulation(config)
        return (time.perf_counter() - start, result)   # simlint: ignore[SIM003] -- measuring host runtime is the point
    finally:
        os.environ.pop(FASTPATH_ENV, None)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_hotpath.json",
                        help="where to write the JSON report")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="interleaved timing rounds per config")
    parser.add_argument("--configs", choices=["all", HIT, MISS],
                        default="all",
                        help="run only one gate class (default: all)")
    args = parser.parse_args()
    min_ratio = float(os.environ.get("REPRO_HOTPATH_MIN_RATIO", "2.0"))
    min_ratio_miss = float(
        os.environ.get("REPRO_HOTPATH_MIN_RATIO_MISS", "2.0"))

    matrix = [row for row in MATRIX
              if args.configs == "all" or row[3] == args.configs]
    rows: List[Dict[str, object]] = []
    diverged = False
    hit_failed = False
    best_miss_ratio = 0.0
    for workload, policy, scale, gate_class in matrix:
        config = SimConfig(workload=workload, policy=policy,
                           seed=3).scaled(scale)
        best = {"fast": float("inf"), "ref": float("inf")}
        results: Dict[str, RunResult] = {}
        for _ in range(args.rounds):
            for mode, fastpath in (("fast", True), ("ref", False)):
                elapsed, results[mode] = timed_run(config, fastpath)
                best[mode] = min(best[mode], elapsed)
        identical = results["fast"] == results["ref"]
        diverged = diverged or not identical
        ratio = best["ref"] / best["fast"]
        if gate_class == HIT:
            row_ok = identical and ratio >= min_ratio
            hit_failed = hit_failed or not row_ok
            gate = f"each>={min_ratio:.1f}"
        else:
            best_miss_ratio = max(best_miss_ratio, ratio)
            row_ok = identical   # speed verdict for MISS is group-level
            gate = f"any>={min_ratio_miss:.1f}"
        rows.append({
            "workload": workload, "policy": policy, "scale": scale,
            "fast_s": round(best["fast"], 4), "ref_s": round(best["ref"], 4),
            "ratio": round(ratio, 3), "gate": gate_class,
            "identical": identical, "pass": row_ok,
        })
        verdict = "ok" if row_ok else ("DIVERGED" if not identical
                                       else "TOO SLOW")
        print(f"{workload:8s} {policy:14s} fast={best['fast']:.2f}s "
              f"ref={best['ref']:.2f}s ratio={ratio:.2f} [{gate}] {verdict}")

    miss_rows = [row for row in rows if row["gate"] == MISS]
    miss_gate_ok = (not miss_rows
                    or best_miss_ratio >= min_ratio_miss)
    if miss_rows:
        print(f"miss-heavy group: best ratio {best_miss_ratio:.2f} "
              f"(gate any>={min_ratio_miss:.1f}) "
              f"{'ok' if miss_gate_ok else 'TOO SLOW'}")
    failed = diverged or hit_failed or not miss_gate_ok

    report = {
        "min_ratio": min_ratio,
        "min_ratio_miss": min_ratio_miss,
        "rounds": args.rounds,
        "configs": rows,
        "miss_gate": {
            "rule": "any-of",
            "best_ratio": round(best_miss_ratio, 3),
            "pass": miss_gate_ok,
        },
        "pass": not failed,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"report written to {args.output}")

    if failed:
        print("FAIL: hot-path gate violated (see rows above)",
              file=sys.stderr)
        return 1
    print(f"OK: gated hit configs >= {min_ratio:.1f}x, miss group best "
          f">= {min_ratio_miss:.1f}x, every config bit-identical to the "
          "reference path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
