"""Figure 12: average bank utilization across write policies.

Paper shape: every configuration using slow writes raises utilization.
"""

from repro.experiments.figures import fig12_policy_utilization


def test_fig12_policy_utilization(benchmark, save_table):
    table = benchmark.pedantic(
        fig12_policy_utilization, rounds=1, iterations=1,
    )
    save_table("fig12_policy_utilization", table)

    gm = {r[1]: r[2] for r in table.rows if r[0] == "MEAN"}
    assert gm["Slow+SC"] > gm["Norm"]
    assert gm["BE-Mellow+SC"] > gm["Norm"]
    assert all(0.0 <= u <= 1.0 for _, _, u in table.rows)
