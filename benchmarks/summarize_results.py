"""Summarise benchmarks/results/*.txt: the suite-level rows EXPERIMENTS.md
records.  Run after `pytest benchmarks/ --benchmark-only`:

    python benchmarks/summarize_results.py           # human-readable
    python benchmarks/summarize_results.py --json    # machine-readable

The ``--json`` form is what CI archives as an artifact; it groups the same
suite-level lines by source file so regressions can be diffed without
parsing rendered tables.  When the hot-path speedup report
(``BENCH_hotpath.json`` at the repo root, written by
``benchmarks/check_hotpath_speedup.py`` and committed in-tree) is
present, both forms include it, so one summary carries the paper-figure
rows *and* the perf-gate state.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
HOTPATH_REPORT = Path(__file__).parent.parent / "BENCH_hotpath.json"

IPC_POLICIES = ["Norm", "E-Norm+NC", "Slow+SC", "E-Slow+SC", "B-Mellow+SC",
                "BE-Mellow+SC", "Norm+WQ", "B-Mellow+SC+WQ",
                "BE-Mellow+SC+WQ"]
LIFETIME_POLICIES = ["Slow+SC", "E-Slow+SC", "B-Mellow+SC", "BE-Mellow+SC",
                     "E-Norm+NC", "Norm+WQ", "BE-Mellow+SC+WQ"]


def grab(name: str, match: str, results_dir: Path = RESULTS_DIR):
    """First line of results/<name> starting with ``match`` (None if absent)."""
    path = results_dir / name
    if not path.is_file():
        return None
    for line in path.read_text().splitlines():
        if line.startswith(match):
            return line
    return None


def _fields(line: str):
    """Split a table row into label + numeric columns where possible."""
    values = []
    for token in line.split():
        try:
            values.append(float(token))
        except ValueError:
            values.append(token)
    return values


def collect(results_dir: Path = RESULTS_DIR) -> dict:
    """All suite-level summary rows, grouped by results file."""
    summary: dict = {}

    def add(name, match):
        line = grab(name, match, results_dir)
        if line is not None:
            summary.setdefault(name, []).append(
                {"match": match, "line": line, "fields": _fields(line)}
            )

    for policy in IPC_POLICIES:
        add("fig10_policy_ipc.txt", f"GEOMEAN     {policy} ")
    for policy in LIFETIME_POLICIES:
        add("fig11_policy_lifetime.txt", f"GEOMEAN     {policy} ")
    add("fig17_expo_sensitivity.txt", "Slow+SC")
    add("fig17_expo_sensitivity.txt", "BE-Mellow+SC")

    headline = results_dir / "headline_summary.txt"
    if headline.is_file():
        summary["headline_summary.txt"] = [
            {"match": None, "line": line, "fields": _fields(line)}
            for line in headline.read_text().splitlines()
        ]
    return summary


def load_hotpath_report(path: Path = HOTPATH_REPORT):
    """The committed hot-path speedup report, or None when absent."""
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def print_text(summary: dict, hotpath=None) -> None:
    for name in ("fig10_policy_ipc.txt", "fig11_policy_lifetime.txt",
                 "fig17_expo_sensitivity.txt"):
        for row in summary.get(name, []):
            print(f"{name}: {row['line']}")
        print()
    for row in summary.get("headline_summary.txt", []):
        print("headline:", row["line"])
    if hotpath is not None:
        verdict = "pass" if hotpath.get("pass") else "FAIL"
        print(f"hotpath: {verdict} "
              f"(hit gate >= {hotpath.get('min_ratio')}x, "
              f"miss gate any >= {hotpath.get('min_ratio_miss')}x)")
        for row in hotpath.get("configs", []):
            print(f"hotpath: {row['workload']:8s} {row['policy']:14s} "
                  f"[{row.get('gate', '?'):4s}] ratio={row['ratio']:.2f} "
                  f"identical={row['identical']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable summary on stdout")
    parser.add_argument("--results-dir", type=Path, default=RESULTS_DIR)
    args = parser.parse_args(argv)
    summary = collect(args.results_dir)
    hotpath = load_hotpath_report()
    if args.json:
        json.dump({"results_dir": str(args.results_dir), "sections": summary,
                   "hotpath": hotpath},
                  sys.stdout, indent=2)
        print()
    else:
        print_text(summary, hotpath)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
