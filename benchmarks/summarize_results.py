"""Summarise benchmarks/results/*.txt: the suite-level rows EXPERIMENTS.md
records.  Run after `pytest benchmarks/ --benchmark-only`:

    python benchmarks/summarize_results.py
"""
from pathlib import Path
R = Path(__file__).parent / "results"
def grab(name, match):
    for line in (R / name).read_text().splitlines():
        if line.startswith(match):
            print(f"{name}: {line}")
for policy in ["Norm", "E-Norm+NC", "Slow+SC", "E-Slow+SC", "B-Mellow+SC",
               "BE-Mellow+SC", "Norm+WQ", "B-Mellow+SC+WQ", "BE-Mellow+SC+WQ"]:
    grab("fig10_policy_ipc.txt", f"GEOMEAN     {policy} ")
print()
for policy in ["Slow+SC", "E-Slow+SC", "B-Mellow+SC", "BE-Mellow+SC",
               "E-Norm+NC", "Norm+WQ", "BE-Mellow+SC+WQ"]:
    grab("fig11_policy_lifetime.txt", f"GEOMEAN     {policy} ")
print()
grab("fig17_expo_sensitivity.txt", "Slow+SC")
grab("fig17_expo_sensitivity.txt", "BE-Mellow+SC")
print()
for line in (R / "headline_summary.txt").read_text().splitlines():
    print("headline:", line)
