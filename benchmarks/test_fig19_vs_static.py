"""Figure 19: BE-Mellow+SC+WQ against every static policy.

Paper shapes: no single static policy is best for all workloads; the
adaptive scheme reaches the lifetime floor everywhere and matches or
beats the best static policy on most workloads.
"""

from repro.experiments.figures import fig19_vs_static


def test_fig19_vs_static(benchmark, save_table):
    table = benchmark.pedantic(fig19_vs_static, rounds=1, iterations=1)
    save_table("fig19_vs_static", table)

    workloads = sorted({r[0] for r in table.rows})
    best_static = {}
    mellow_ratio = {}
    for row in table.rows:
        workload, policy = row[0], row[1]
        if row[5]:
            best_static[workload] = policy
        if policy == "BE-Mellow+SC+WQ" and row[6]:
            mellow_ratio[workload] = float(row[6])

    # Every workload found a best static policy and a mellow comparison.
    assert set(best_static) == set(workloads)
    assert set(mellow_ratio) == set(workloads)

    # No single static policy fits all workloads (paper's core argument)
    # - with the full suite there are always several distinct winners.
    if len(workloads) >= 6:
        assert len(set(best_static.values())) >= 2

    # The adaptive policy matches or beats the best static policy on a
    # majority of workloads (paper: 8 of 11).
    wins = sum(1 for r in mellow_ratio.values() if r >= 0.95)
    assert wins >= len(workloads) // 2, mellow_ratio
