"""The paper's abstract-level claims, asserted as reproduction targets."""

from repro.experiments.headline import headline_summary


def test_headline_summary(benchmark, save_table):
    table = benchmark.pedantic(headline_summary, rounds=1, iterations=1)
    save_table("headline_summary", table)

    rows = {r[0]: r for r in table.rows}

    # "2.58x lifetime and 1.06x performance of the baseline system"
    be = rows["BE-Mellow+SC"]
    assert 0.95 <= be[1] <= 1.25, f"BE-Mellow+SC ipc ratio {be[1]}"
    assert be[2] >= 1.5, f"BE-Mellow+SC lifetime ratio {be[2]}"

    # E-Slow+SC pays for its lifetime with performance.
    e_slow = rows["E-Slow+SC"]
    assert e_slow[1] < be[1]

    # E-Norm+NC: "an unacceptably short lifetime".
    assert rows["E-Norm+NC"][2] < 1.0

    # Wear Quota floor: the +WQ minimum lifetime clears most of the
    # 8-year target even in truncated windows.
    assert rows["BE-Mellow+SC+WQ"][3] >= 8.0 * 0.55

    # BE-Mellow+SC+WQ is the fastest quota-guaranteed configuration.
    assert rows["BE-Mellow+SC+WQ"][1] >= rows["Norm+WQ"][1]
