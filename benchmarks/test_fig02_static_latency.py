"""Figure 2: IPC and lifetime under static write latencies (motivation).

Paper shapes checked: slow writes lengthen lifetime monotonically; 3x-slow
writes cost double-digit IPC on the bandwidth-bound stream workload; fast
writes give some benchmarks unacceptably short lifetimes.
"""

from repro.experiments.figures import fig02_static_latency


def test_fig02_static_latency(benchmark, save_table):
    table = benchmark.pedantic(fig02_static_latency, rounds=1, iterations=1)
    save_table("fig02_static_latency", table)

    rows = {(r[0], r[1]): r for r in table.rows}
    workloads = sorted({r[0] for r in table.rows})

    for workload in workloads:
        fast = rows[(workload, "1.0x")]
        slow = rows[(workload, "3.0x")]
        # Slower writes never shorten lifetime.
        assert slow[4] >= fast[4] * 0.99

    if "stream" in workloads:
        stream_slow = rows[("stream", "3.0x")]
        assert stream_slow[3] < 0.95   # stream suffers from 3x writes

    if "lbm" in workloads:
        assert rows[("lbm", "1.0x")][4] < 8.0   # too short at fast writes
