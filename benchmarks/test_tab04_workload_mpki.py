"""Table IV: measured LLC MPKI of the synthetic workloads vs the paper."""

from repro.experiments.figures import tab04_workload_mpki


def test_tab04_workload_mpki(benchmark, save_table):
    table = benchmark.pedantic(tab04_workload_mpki, rounds=1, iterations=1)
    save_table("tab04_workload_mpki", table)

    for workload, measured, paper in table.rows:
        # Synthetic profiles target the published MPKI; hold a loose band
        # (the exact value shifts with the scaled warmup windows).
        assert measured == paper or 0.55 * paper < measured < 1.8 * paper, (
            f"{workload}: measured {measured:.2f} vs paper {paper}"
        )
    # The relative ordering of the extremes must hold.
    mpki = {r[0]: r[1] for r in table.rows}
    if {"mcf", "hmmer"} <= mpki.keys():
        assert mpki["mcf"] > mpki["hmmer"] * 5
