"""Figure 11: memory lifetime across write policies.

Paper shapes: E-Norm+NC has an unacceptably short lifetime; Slow/E-Slow
live longest; BE-Mellow+SC reaches ~2.58x the baseline lifetime; the +WQ
configurations pull every workload toward the 8-year floor.
"""

from repro.experiments.figures import fig11_policy_lifetime


def rows_for(table, workload):
    return {r[1]: r for r in table.rows if r[0] == workload}


def test_fig11_policy_lifetime(benchmark, save_table):
    table = benchmark.pedantic(fig11_policy_lifetime, rounds=1, iterations=1)
    save_table("fig11_policy_lifetime", table)

    gm = rows_for(table, "GEOMEAN")
    # Headline: BE-Mellow+SC multiplies lifetime (paper: 2.58x geomean).
    assert gm["BE-Mellow+SC"][3] > 1.5
    # Eager writebacks + normal-speed cancellation wear the memory out.
    assert gm["E-Norm+NC"][3] < 1.0
    # All-slow policies live longest among the non-WQ schemes.
    assert gm["Slow+SC"][3] > gm["B-Mellow+SC"][3]
    # Bank-aware alone already helps.
    assert gm["B-Mellow+SC"][3] > 1.2

    workloads = sorted({r[0] for r in table.rows if r[0] != "GEOMEAN"})
    for workload in workloads:
        per = rows_for(table, workload)
        # Wear Quota must lift the heavy workloads toward the 8-year floor
        # (asymptotically exact; short windows may truncate catch-up).
        assert per["BE-Mellow+SC+WQ"][2] > 0.6 * 8.0, workload
