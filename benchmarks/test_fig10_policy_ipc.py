"""Figure 10: IPC across write policies.

Paper shapes: E-Norm+NC is (near-)fastest; E-Slow+SC costs real IPC
(geomean 0.77x in the paper); BE-Mellow+SC stays at or above Norm
(1.06x geomean); among +WQ configurations BE-Mellow+SC+WQ performs best.
"""

from repro.experiments.figures import fig10_policy_ipc


def rows_for(table, workload):
    return {r[1]: r for r in table.rows if r[0] == workload}


def test_fig10_policy_ipc(benchmark, save_table):
    table = benchmark.pedantic(fig10_policy_ipc, rounds=1, iterations=1)
    save_table("fig10_policy_ipc", table)

    gm = rows_for(table, "GEOMEAN")
    # BE-Mellow+SC performs at least as well as the baseline (paper 1.06x).
    assert gm["BE-Mellow+SC"][3] >= 0.98
    # All-slow with eager writes costs performance relative to BE-Mellow.
    assert gm["E-Slow+SC"][3] <= gm["BE-Mellow+SC"][3]
    # Among Wear Quota configurations, BE-Mellow+SC+WQ is the best.
    assert gm["BE-Mellow+SC+WQ"][3] >= gm["Norm+WQ"][3]
    assert gm["BE-Mellow+SC+WQ"][3] >= gm["B-Mellow+SC+WQ"][3] * 0.99
