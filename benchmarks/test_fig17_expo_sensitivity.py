"""Figure 17: lifetime sensitivity to the endurance exponent.

Paper shapes: both Slow+SC and BE-Mellow+SC gain lifetime as Expo_Factor
rises, Slow+SC more steeply (BE-Mellow issues some normal writes whose
wear is exponent-independent); even at a pessimistic Expo_Factor of 1.0
BE-Mellow+SC keeps >= 1.47x of Norm's lifetime.
"""

from repro.experiments.figures import fig17_expo_sensitivity


def test_fig17_expo_sensitivity(benchmark, save_table):
    table = benchmark.pedantic(fig17_expo_sensitivity, rounds=1, iterations=1)
    save_table("fig17_expo_sensitivity", table)

    rows = {r[0]: r[1:] for r in table.rows}
    slow = rows["Slow+SC"]
    mellow = rows["BE-Mellow+SC"]
    norm = rows["Norm"]

    assert all(abs(v - 1.0) < 1e-9 for v in norm)
    # Monotone gain with the exponent.
    assert list(slow) == sorted(slow)
    assert list(mellow) == sorted(mellow)
    # Slow+SC's relative gain grows faster from expo 2.0 to 3.0.
    slow_growth = slow[-1] / slow[2]
    mellow_growth = mellow[-1] / mellow[2]
    assert slow_growth > mellow_growth
    # Mellow Writes still helps under the pessimistic linear model
    # (paper: 1.47x at Expo_Factor 1.0).
    assert mellow[0] > 1.1
