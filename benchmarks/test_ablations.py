"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.experiments.ablations import (
    abl_eager_scan_interval,
    abl_eager_selector,
    abl_flip_n_write,
    abl_multi_latency,
    abl_quota_period,
)


def test_abl_eager_selector(benchmark, save_table):
    table = benchmark.pedantic(abl_eager_selector, rounds=1, iterations=1)
    save_table("abl_eager_selector", table)
    by_key = {(r[0], r[1]): r for r in table.rows}
    for workload in {r[0] for r in table.rows}:
        stack = by_key[(workload, "stack")]
        dead = by_key[(workload, "deadblock")]
        # The stack profiler volunteers far more eager writes; the
        # dead-block predictor is the precision-oriented end.
        assert stack[4] >= dead[4]
        assert dead[6] <= stack[6] + 0.02   # waste rate no worse


def test_abl_flip_n_write(benchmark, save_table):
    table = benchmark.pedantic(abl_flip_n_write, rounds=1, iterations=1)
    save_table("abl_flip_n_write", table)
    by_key = {(r[0], r[1]): r for r in table.rows}
    for workload in {r[0] for r in table.rows}:
        norm = by_key[(workload, "Norm")][3]
        norm_fnw = by_key[(workload, "Norm+FNW")][3]
        mellow = by_key[(workload, "BE-Mellow+SC")][3]
        both = by_key[(workload, "BE-Mellow+SC+FNW")][3]
        assert norm_fnw > norm * 1.5          # FNW alone ~2x
        assert both > mellow * 1.5            # still ~2x on top of Mellow


def test_abl_multi_latency(benchmark, save_table):
    table = benchmark.pedantic(abl_multi_latency, rounds=1, iterations=1)
    save_table("abl_multi_latency", table)
    by_key = {(r[0], r[1]): r for r in table.rows}
    for workload in {r[0] for r in table.rows}:
        binary = by_key[(workload, "B-Mellow+SC")]
        ml = by_key[(workload, "B-Mellow+SC+ML")]
        # The middle tier may only move writes off the normal speed.
        assert ml[4] <= binary[4] * 1.05      # normal writes do not grow
        assert ml[3] >= binary[3] * 0.9       # lifetime held or improved


def test_abl_eager_scan_interval(benchmark, save_table):
    table = benchmark.pedantic(
        abl_eager_scan_interval, rounds=1, iterations=1,
    )
    save_table("abl_eager_scan_interval", table)
    eager_counts = table.column("eager_writebacks")
    # Scanning less often produces monotonically fewer eager writes.
    assert eager_counts[0] >= eager_counts[-1]


def test_abl_quota_period(benchmark, save_table):
    table = benchmark.pedantic(abl_quota_period, rounds=1, iterations=1)
    save_table("abl_quota_period", table)
    lifetimes = table.column("lifetime_years")
    # Shorter sample periods track the 8-year target more tightly.  With
    # very long periods the truncated measurement window holds too few
    # gating opportunities to move lbm off its ~2.3-year baseline.
    assert lifetimes == sorted(lifetimes, reverse=True)
    assert lifetimes[0] > 5.0
    assert all(life > 2.0 for life in lifetimes)


def test_abl_dram_buffer(benchmark, save_table):
    from repro.experiments.ablations import abl_dram_buffer
    table = benchmark.pedantic(abl_dram_buffer, rounds=1, iterations=1)
    save_table("abl_dram_buffer", table)
    by_key = {(r[0], r[1]): r for r in table.rows}
    # Coalescing never *increases* the writes reaching the resistive
    # array.  Tolerance: the buffered run's longer functional warmup
    # shifts its measured trace segment, moving writeback counts a few
    # percent either way independently of the buffer.
    for workload in {r[0] for r in table.rows}:
        assert (by_key[(workload, "Norm+DRAM65536")][4]
                <= by_key[(workload, "Norm")][4] * 1.05)
    # Where rewrite locality exists (milc), the buffer removes writes.
    assert (by_key[("milc", "Norm+DRAM65536")][4]
            < by_key[("milc", "Norm")][4] * 0.98)


def test_abl_write_pausing(benchmark, save_table):
    from repro.experiments.ablations import abl_write_pausing
    table = benchmark.pedantic(abl_write_pausing, rounds=1, iterations=1)
    save_table("abl_write_pausing", table)
    by_key = {(r[0], r[1]): r for r in table.rows}
    for workload in {r[0] for r in table.rows}:
        cancel = by_key[(workload, "Slow+SC")]
        pause = by_key[(workload, "Slow+SC+WP")]
        # Pausing re-pays no pulse time: lifetime holds or improves.
        assert pause[3] >= cancel[3] * 0.95
        assert pause[5] > 0 or cancel[4] == 0   # pauses replace cancels
